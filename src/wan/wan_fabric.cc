#include "src/wan/wan_fabric.h"

namespace switchfs::wan {

void WanFabric::SetPartitioned(uint32_t a, uint32_t b, bool on) {
  if (on) {
    partitioned_.insert(Key(a, b));
  } else {
    partitioned_.erase(Key(a, b));
  }
}

bool WanFabric::Partitioned(uint32_t a, uint32_t b) const {
  return partitioned_.count(Key(a, b)) > 0;
}

void WanFabric::Send(uint32_t from, uint32_t to,
                     std::function<void()> deliver) {
  messages_sent_++;
  if (Partitioned(from, to) ||
      (config_.loss_rate > 0.0 && rng_.NextBool(config_.loss_rate))) {
    messages_dropped_++;
    return;
  }
  sim::SimTime delay = config_.latency;
  if (config_.jitter > 0) {
    delay += static_cast<sim::SimTime>(
        rng_.NextBelow(static_cast<uint64_t>(config_.jitter) + 1));
  }
  sim_->ScheduleAfter(
      delay, [this, from, to, deliver = std::move(deliver)]() {
        if (Partitioned(from, to)) {
          // The partition started while this message was in flight.
          messages_dropped_++;
          return;
        }
        deliver();
      });
}

}  // namespace switchfs::wan
