// The simulated wide-area fabric between clusters: point-to-point links
// with configurable one-way latency, uniform jitter, random loss, and a
// partition matrix for split-brain experiments. Deliberately NOT
// net::Network — WAN messages are whole batches between daemon processes,
// not switch-mediated packets, and the partition matrix must be orthogonal
// to each cluster's intra-DC fault config.
#ifndef SRC_WAN_WAN_FABRIC_H_
#define SRC_WAN_WAN_FABRIC_H_

#include <cstdint>
#include <functional>
#include <set>
#include <utility>

#include "src/common/random.h"
#include "src/sim/simulator.h"
#include "src/wan/wan_batch.h"

namespace switchfs::wan {

class WanFabric {
 public:
  WanFabric(sim::Simulator* sim, WanLinkConfig config, uint64_t seed)
      : sim_(sim), config_(config), rng_(seed ^ 0x3a4db17ce5f0a9ULL) {}

  // Severs (or heals) the bidirectional link between clusters a and b.
  void SetPartitioned(uint32_t a, uint32_t b, bool on);
  bool Partitioned(uint32_t a, uint32_t b) const;

  // Delivers `deliver` at the destination after the link delay. The message
  // is dropped — `deliver` never runs — if the pair is partitioned at send
  // OR arrival time (a partition kills in-flight traffic), or on a loss
  // roll. Acks traverse the fabric the same way, so they are equally
  // droppable.
  void Send(uint32_t from, uint32_t to, std::function<void()> deliver);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  static std::pair<uint32_t, uint32_t> Key(uint32_t a, uint32_t b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  sim::Simulator* sim_;
  WanLinkConfig config_;
  Rng rng_;
  std::set<std::pair<uint32_t, uint32_t>> partitioned_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace switchfs::wan

#endif  // SRC_WAN_WAN_FABRIC_H_
