// Simulated data-node tier (Fig 19 end-to-end runs): N data servers, each a
// FIFO bandwidth queue. A read/write of B bytes occupies the node for
// request-processing cost + B / bandwidth.
#ifndef SRC_WORKLOAD_DATA_SERVICE_H_
#define SRC_WORKLOAD_DATA_SERVICE_H_

#include <memory>
#include <vector>

#include "src/common/hash.h"
#include "src/sim/costs.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace switchfs::wl {

class DataService {
 public:
  DataService(sim::Simulator* sim, const sim::CostModel* costs, int nodes)
      : sim_(sim), costs_(costs) {
    for (int i = 0; i < nodes; ++i) {
      nodes_.push_back(std::make_unique<sim::Semaphore>(sim, 1));
    }
  }

  // Transfers `bytes` to/from the data node owning `path` (RTT + queueing +
  // transfer time at the node's bandwidth).
  sim::Task<void> Transfer(const std::string& path, uint64_t bytes) {
    const size_t node = HashString(path) % nodes_.size();
    // Network RTT to the data node.
    co_await sim::Delay(sim_, 2 * costs_->link_latency +
                                  costs_->plain_switch_delay);
    sim::Semaphore& slot = *nodes_[node];
    co_await slot.Acquire();
    const double seconds =
        static_cast<double>(bytes) * 8.0 /
        (costs_->data_bandwidth_gbps * 1e9);
    co_await sim::Delay(
        sim_, costs_->data_request_cost +
                  static_cast<sim::SimTime>(seconds * 1e9));
    slot.Release();
    transfers_++;
    bytes_moved_ += bytes;
  }

  uint64_t transfers() const { return transfers_; }
  uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  sim::Simulator* sim_;
  const sim::CostModel* costs_;
  std::vector<std::unique_ptr<sim::Semaphore>> nodes_;
  uint64_t transfers_ = 0;
  uint64_t bytes_moved_ = 0;
};

}  // namespace switchfs::wl

#endif  // SRC_WORKLOAD_DATA_SERVICE_H_
