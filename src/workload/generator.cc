#include "src/workload/generator.h"

#include <algorithm>
#include <cassert>

namespace switchfs::wl {

MixRatios PanguMix() {
  // Tab 5 row 1 (PanguFS data-center services, derived from Tab 2).
  MixRatios m;
  m.open_close = 52.6;
  m.stat = 12.4;
  m.create = 9.58;
  m.unlink = 11.9;
  m.rename = 9.3;
  m.chmod = 0.1;
  m.readdir = 3.9;
  m.statdir = 0.2;
  return m;
}

MixRatios CnnTrainingMix() {
  // Tab 5 row 2: CNN training on an image dataset.
  MixRatios m;
  m.open_close = 42.8;
  m.stat = 21.4;
  m.data_read = 14.2;
  m.data_write = 7.1;
  m.create = 7.1;
  m.unlink = 7.1;
  m.mkdir = 0.1;
  m.rmdir = 0.1;
  m.statdir = 0.1;
  m.readdir = 0.1;
  return m;
}

MixRatios ThumbnailMix() {
  // Tab 5 row 3: thumbnail generation over an image corpus.
  MixRatios m;
  m.open_close = 43.9;
  m.stat = 21.9;
  m.data_read = 12.2;
  m.data_write = 10.9;
  m.create = 10.9;
  m.mkdir = 0.1;
  m.statdir = 0.1;
  m.readdir = 0.1;
  return m;
}

namespace {

enum MixOp {
  kMixOpen = 0,
  kMixStat,
  kMixCreate,
  kMixUnlink,
  kMixRename,
  kMixChmod,
  kMixReaddir,
  kMixStatDir,
  kMixMkdir,
  kMixRmdir,
  kMixDataRead,
  kMixDataWrite,
  kMixPagedReaddir,
  kMixStatBurst,
  kMixSetAttr,
  kMixBulkCreate,
  kMixHotRead,
};

}  // namespace

MixStream::MixStream(MixRatios ratios, std::vector<std::string> dirs,
                     int preloaded_per_dir, double skew, uint64_t io_bytes,
                     uint64_t seed)
    : dirs_(std::move(dirs)),
      sampler_([&] {
        std::vector<double> weights;
        auto add = [&](double w, int op) {
          if (w > 0) {
            weights.push_back(w);
            op_for_weight_.push_back(op);
          }
        };
        add(ratios.open_close, kMixOpen);
        add(ratios.stat, kMixStat);
        add(ratios.create, kMixCreate);
        add(ratios.unlink, kMixUnlink);
        add(ratios.rename, kMixRename);
        add(ratios.chmod, kMixChmod);
        add(ratios.readdir, kMixReaddir);
        add(ratios.statdir, kMixStatDir);
        add(ratios.mkdir, kMixMkdir);
        add(ratios.rmdir, kMixRmdir);
        add(ratios.data_read, kMixDataRead);
        add(ratios.data_write, kMixDataWrite);
        add(ratios.paged_readdir, kMixPagedReaddir);
        add(ratios.stat_burst, kMixStatBurst);
        add(ratios.setattr, kMixSetAttr);
        add(ratios.bulk_create, kMixBulkCreate);
        add(ratios.hot_read, kMixHotRead);
        return DiscreteSampler(weights);
      }()),
      skew_(skew),
      io_bytes_(io_bytes) {
  assert(!dirs_.empty());
  state_.resize(dirs_.size());
  Rng rng(seed);
  for (DirState& ds : state_) {
    ds.live.reserve(preloaded_per_dir);
    for (int i = 0; i < preloaded_per_dir; ++i) {
      ds.live.push_back("f" + std::to_string(i));
    }
  }
}

size_t MixStream::PickDir(Rng& rng) {
  if (skew_ <= 0.0 || dirs_.size() < 5) {
    return rng.NextBelow(dirs_.size());
  }
  // 80/20-style skew: `skew_` fraction of ops target the first 20% of dirs.
  const size_t hot = std::max<size_t>(1, dirs_.size() / 5);
  if (rng.NextBool(skew_)) {
    return rng.NextBelow(hot);
  }
  return hot + rng.NextBelow(dirs_.size() - hot);
}

std::optional<Op> MixStream::Next(Rng& rng) {
  const int kind = op_for_weight_[sampler_.Next(rng)];
  const size_t d = PickDir(rng);
  DirState& ds = state_[d];
  const std::string& dir = dirs_[d];
  Op op;
  switch (kind) {
    case kMixOpen:
    case kMixStat:
    case kMixChmod:
    case kMixSetAttr:
    case kMixDataRead: {
      if (ds.live.empty()) {
        op.type = core::OpType::kStatDir;
        op.path = dir;
        return op;
      }
      const std::string& name = ds.live[rng.NextBelow(ds.live.size())];
      if (kind == kMixChmod || kind == kMixSetAttr) {
        op.type = core::OpType::kSetAttr;
      } else if (kind == kMixStat) {
        op.type = core::OpType::kStat;
      } else {
        op.type = core::OpType::kOpen;
      }
      op.path = dir + "/" + name;
      if (kind == kMixDataRead) {
        op.io_bytes = io_bytes_;
        op.is_data_read = true;
      }
      return op;
    }
    case kMixStatBurst: {
      if (ds.live.empty()) {
        op.type = core::OpType::kStatDir;
        op.path = dir;
        return op;
      }
      op.type = core::OpType::kBatchStat;
      const int burst = std::max(1, stat_burst_size);
      op.batch.reserve(burst);
      for (int i = 0; i < burst; ++i) {
        op.batch.push_back(dir + "/" + ds.live[rng.NextBelow(ds.live.size())]);
      }
      return op;
    }
    case kMixPagedReaddir:
      op.type = core::OpType::kReaddirPage;
      op.path = dir;
      return op;
    case kMixHotRead: {
      // Zipf-skewed stat over the hot directory's live files, ignoring the
      // per-op dir draw: a few names in one directory absorb most reads,
      // which is exactly the population the in-switch cache keeps resident.
      DirState& hs = state_[0];
      if (hs.live.empty()) {
        op.type = core::OpType::kStatDir;
        op.path = dirs_[0];
        return op;
      }
      if (hot_zipf_ == nullptr || hot_zipf_->n() != hs.live.size()) {
        hot_zipf_ =
            std::make_unique<ZipfGenerator>(hs.live.size(), hot_read_theta);
      }
      op.type = core::OpType::kStat;
      op.path = dirs_[0] + "/" + hs.live[hot_zipf_->Next(rng)];
      return op;
    }
    case kMixBulkCreate: {
      op.type = core::OpType::kBulkInsert;
      op.path = dir;
      const int burst = std::max(1, bulk_create_size);
      op.batch.reserve(burst);
      for (int i = 0; i < burst; ++i) {
        const std::string name = "n" + std::to_string(ds.next_fresh++);
        ds.live.push_back(name);
        op.batch.push_back(name);
      }
      return op;
    }
    case kMixCreate:
    case kMixDataWrite: {
      const std::string name = "n" + std::to_string(ds.next_fresh++);
      ds.live.push_back(name);
      op.type = core::OpType::kCreate;
      op.path = dir + "/" + name;
      if (kind == kMixDataWrite) {
        op.io_bytes = io_bytes_;
        op.is_data_write = true;
      }
      return op;
    }
    case kMixUnlink: {
      if (ds.live.empty()) {
        op.type = core::OpType::kStatDir;
        op.path = dir;
        return op;
      }
      const size_t idx = rng.NextBelow(ds.live.size());
      op.type = core::OpType::kUnlink;
      op.path = dir + "/" + ds.live[idx];
      ds.live[idx] = ds.live.back();
      ds.live.pop_back();
      return op;
    }
    case kMixRename: {
      if (ds.live.empty()) {
        op.type = core::OpType::kStatDir;
        op.path = dir;
        return op;
      }
      const size_t idx = rng.NextBelow(ds.live.size());
      const std::string from = ds.live[idx];
      const std::string to = "r" + std::to_string(ds.next_fresh++);
      ds.live[idx] = to;
      op.type = core::OpType::kRename;
      op.path = dir + "/" + from;
      op.path2 = dir + "/" + to;
      return op;
    }
    case kMixReaddir:
      op.type = core::OpType::kReaddir;
      op.path = dir;
      return op;
    case kMixStatDir:
      op.type = core::OpType::kStatDir;
      op.path = dir;
      return op;
    case kMixMkdir:
      op.type = core::OpType::kMkdir;
      op.path = dir + "/sub" + std::to_string(ds.next_fresh++);
      return op;
    case kMixRmdir:
      // Bounded model: remove a just-created empty subdirectory if any; the
      // trace ratio for rmdir is ~0.01-0.1% so precision hardly matters.
      op.type = core::OpType::kStatDir;
      op.path = dir;
      return op;
    default:
      op.type = core::OpType::kStat;
      op.path = dir;
      return op;
  }
}

std::vector<std::string> PreloadDirs(core::FsWorld& world, int num_dirs,
                                     const std::string& prefix) {
  std::vector<std::string> dirs;
  dirs.reserve(num_dirs);
  for (int i = 0; i < num_dirs; ++i) {
    dirs.push_back(prefix + std::to_string(i));
    world.PreloadDir(dirs.back());
  }
  return dirs;
}

std::vector<std::string> PreloadFiles(core::FsWorld& world,
                                      const std::vector<std::string>& dirs,
                                      int files_per_dir,
                                      const std::string& prefix) {
  std::vector<std::string> files;
  files.reserve(dirs.size() * files_per_dir);
  for (const std::string& d : dirs) {
    for (int i = 0; i < files_per_dir; ++i) {
      files.push_back(d + "/" + prefix + std::to_string(i));
      world.PreloadFileAt(files.back());
    }
  }
  return files;
}

}  // namespace switchfs::wl
