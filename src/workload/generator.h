// Operation-stream generators for the paper's workloads:
//  * single-op streams over preset path populations (Fig 12: create/delete/
//    mkdir/rmdir/stat/statdir in a single large directory vs many dirs),
//  * create bursts (Fig 17: K consecutive creates per directory),
//  * ratio-mix streams with skewed directory popularity (Fig 19 synthetic,
//    Tab 2/Tab 5 operation mixes).
#ifndef SRC_WORKLOAD_GENERATOR_H_
#define SRC_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/workload/runner.h"

namespace switchfs::wl {

// Applies one op type to paths drawn uniformly (with replacement) from a
// fixed population. Unbounded.
class RandomChoiceStream : public OpStream {
 public:
  RandomChoiceStream(core::OpType op, std::vector<std::string> paths)
      : op_(op), paths_(std::move(paths)) {}

  std::optional<Op> Next(Rng& rng) override {
    Op op;
    op.type = op_;
    op.path = paths_[rng.NextBelow(paths_.size())];
    return op;
  }

 private:
  core::OpType op_;
  std::vector<std::string> paths_;
};

// Applies one op type to each path exactly once, in a pre-shuffled order
// (delete/rmdir sweeps). Bounded.
class ShuffledOnceStream : public OpStream {
 public:
  ShuffledOnceStream(core::OpType op, std::vector<std::string> paths,
                     uint64_t seed)
      : op_(op), paths_(std::move(paths)) {
    Rng rng(seed);
    for (size_t i = paths_.size(); i > 1; --i) {
      std::swap(paths_[i - 1], paths_[rng.NextBelow(i)]);
    }
  }

  std::optional<Op> Next(Rng& /*rng*/) override {
    if (next_ >= paths_.size()) {
      return std::nullopt;
    }
    Op op;
    op.type = op_;
    op.path = paths_[next_++];
    return op;
  }

 private:
  core::OpType op_;
  std::vector<std::string> paths_;
  size_t next_ = 0;
};

// Creates fresh names spread across a set of parent directories (create /
// mkdir streams). Unbounded; names never repeat.
class FreshNameStream : public OpStream {
 public:
  FreshNameStream(core::OpType op, std::vector<std::string> parent_dirs,
                  std::string prefix)
      : op_(op), parents_(std::move(parent_dirs)), prefix_(std::move(prefix)) {}

  std::optional<Op> Next(Rng& rng) override {
    Op op;
    op.type = op_;
    const std::string& parent = parents_[rng.NextBelow(parents_.size())];
    op.path = parent + (parent.back() == '/' ? "" : "/") + prefix_ +
              std::to_string(counter_++);
    return op;
  }

 private:
  core::OpType op_;
  std::vector<std::string> parents_;
  std::string prefix_;
  uint64_t counter_ = 0;
};

// Geo-replication workload (src/wan/): creates over a namespace shared by
// several sites. With probability `conflict_rate` the name comes from a
// bounded pool every site draws from identically (cross-site same-name
// writes — LWW conflicts once the batches meet); otherwise it is a fresh
// site-unique name (pure replication volume). `site` disambiguates the
// unique names, so two sites running the same stream config never collide
// outside the conflict pool.
class SharedNamespaceStream : public OpStream {
 public:
  SharedNamespaceStream(std::vector<std::string> shared_dirs, uint32_t site,
                        double conflict_rate, size_t conflict_pool = 32)
      : dirs_(std::move(shared_dirs)),
        site_(site),
        conflict_rate_(conflict_rate),
        conflict_pool_(conflict_pool) {}

  std::optional<Op> Next(Rng& rng) override {
    Op op;
    op.type = core::OpType::kCreate;
    const std::string& dir = dirs_[rng.NextBelow(dirs_.size())];
    std::string name;
    if (conflict_pool_ > 0 && rng.NextBool(conflict_rate_)) {
      name = "c" + std::to_string(rng.NextBelow(conflict_pool_));
    } else {
      name = "s" + std::to_string(site_) + "_" + std::to_string(counter_++);
    }
    op.path = dir + (dir.back() == '/' ? "" : "/") + name;
    return op;
  }

 private:
  std::vector<std::string> dirs_;
  uint32_t site_;
  double conflict_rate_;
  size_t conflict_pool_;
  uint64_t counter_ = 0;
};

// Fig 17: bursts of `burst_size` consecutive creates in one directory, then
// the next burst targets the next directory (round-robin).
class BurstCreateStream : public OpStream {
 public:
  BurstCreateStream(std::vector<std::string> dirs, int burst_size)
      : dirs_(std::move(dirs)), burst_size_(burst_size) {}

  std::optional<Op> Next(Rng& /*rng*/) override {
    Op op;
    op.type = core::OpType::kCreate;
    op.path = dirs_[dir_index_] + "/b" + std::to_string(counter_++);
    if (++in_burst_ >= burst_size_) {
      in_burst_ = 0;
      dir_index_ = (dir_index_ + 1) % dirs_.size();
    }
    return op;
  }

 private:
  std::vector<std::string> dirs_;
  int burst_size_;
  int in_burst_ = 0;
  size_t dir_index_ = 0;
  uint64_t counter_ = 0;
};

// Ratio-mix stream (Tab 2 / Tab 5): operation types drawn from a weighted
// distribution, target directory drawn with optional skew (80% of ops to 20%
// of directories, §7.6), live-file bookkeeping so deletes/stats hit existing
// files and creates use fresh names.
struct MixRatios {
  double open_close = 0;
  double stat = 0;
  double create = 0;
  double unlink = 0;
  double rename = 0;
  double chmod = 0;       // setattr-class (mode delta)
  double readdir = 0;
  double statdir = 0;
  double mkdir = 0;
  double rmdir = 0;
  double data_read = 0;   // open+read of io_bytes
  double data_write = 0;  // create+write of io_bytes
  // MetadataService v2 op kinds:
  double paged_readdir = 0;  // full OpenDir/ReaddirPage*/CloseDir scan
  double stat_burst = 0;     // one BatchStat over stat_burst_size live files
  double setattr = 0;        // explicit setattr weight (chmod also maps here)
  double bulk_create = 0;    // one BulkInsert of bulk_create_size fresh names
  // Zipf-skewed stat over the FIRST directory's files (the hottest names of
  // the hottest directory): the in-switch read-cache target workload. Theta
  // comes from MixStream::hot_read_theta.
  double hot_read = 0;
};

// The PanguFS data-center mix (Tab 5 row 1 / Tab 2).
MixRatios PanguMix();
// CNN-training and thumbnail-generation mixes (Tab 5 rows 2-3).
MixRatios CnnTrainingMix();
MixRatios ThumbnailMix();

class MixStream : public OpStream {
 public:
  // `dirs`: preloaded directories; `preloaded_per_dir`: files already present
  // as "f<i>" in each. skew: fraction of ops hitting the hot 20% of dirs
  // (0 = uniform). io_bytes: data volume for data_read/data_write ops.
  MixStream(MixRatios ratios, std::vector<std::string> dirs,
            int preloaded_per_dir, double skew, uint64_t io_bytes,
            uint64_t seed);

  std::optional<Op> Next(Rng& rng) override;

  // Targets per stat_burst op (drawn from the directory's live files).
  int stat_burst_size = 8;
  // Fresh names per bulk_create op (one BulkInsert through an open handle).
  int bulk_create_size = 16;
  // Skew exponent of the hot_read name distribution (Zipf over the hot
  // directory's live files; higher = a few names absorb most reads).
  double hot_read_theta = 1.05;

 private:
  struct DirState {
    std::vector<std::string> live;  // names of existing files
    uint64_t next_fresh = 0;
  };

  size_t PickDir(Rng& rng);

  std::vector<std::string> dirs_;
  std::vector<DirState> state_;
  // Note: op_for_weight_ must be declared (and therefore constructed) before
  // sampler_, whose initializer fills it.
  std::vector<int> op_for_weight_;
  DiscreteSampler sampler_;
  double skew_;
  uint64_t io_bytes_;
  // Lazily (re)built when the hot directory's live population changes.
  std::unique_ptr<ZipfGenerator> hot_zipf_;
};

// Stat bursts over a fixed population: each op is one BatchStat of
// `burst_size` paths drawn uniformly (with replacement). Unbounded.
class StatBurstStream : public OpStream {
 public:
  StatBurstStream(std::vector<std::string> paths, int burst_size)
      : paths_(std::move(paths)), burst_size_(burst_size) {}

  std::optional<Op> Next(Rng& rng) override {
    Op op;
    op.type = core::OpType::kBatchStat;
    op.batch.reserve(burst_size_);
    for (int i = 0; i < burst_size_; ++i) {
      op.batch.push_back(paths_[rng.NextBelow(paths_.size())]);
    }
    return op;
  }

 private:
  std::vector<std::string> paths_;
  int burst_size_;
};

// Helper: builds "/dir<i>" path lists and preloads them (with files) into a
// world.
std::vector<std::string> PreloadDirs(core::FsWorld& world, int num_dirs,
                                     const std::string& prefix = "/dir");
std::vector<std::string> PreloadFiles(core::FsWorld& world,
                                      const std::vector<std::string>& dirs,
                                      int files_per_dir,
                                      const std::string& prefix = "f");

}  // namespace switchfs::wl

#endif  // SRC_WORKLOAD_GENERATOR_H_
