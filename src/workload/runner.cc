#include "src/workload/runner.h"

#include <utility>

#include "src/core/metadata_service.h"
#include "src/sim/task.h"
#include "src/workload/data_service.h"

namespace switchfs::wl {

namespace {

struct SharedState {
  OpStream* stream;
  RunnerConfig config;
  Rng rng;
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t measured = 0;
  sim::SimTime window_start = 0;
  sim::SimTime window_end = 0;
  Histogram latency;
  bool exhausted = false;
};

sim::Task<Status> Execute(core::MetadataService& client, const Op& op,
                          DataService* data) {
  switch (op.type) {
    case core::OpType::kCreate: {
      Status s = co_await client.Create(op.path);
      if (s.ok() && data != nullptr && op.is_data_write && op.io_bytes > 0) {
        co_await data->Transfer(op.path, op.io_bytes);
      }
      co_return s;
    }
    case core::OpType::kUnlink:
      co_return co_await client.Unlink(op.path);
    case core::OpType::kMkdir:
      co_return co_await client.Mkdir(op.path);
    case core::OpType::kRmdir:
      co_return co_await client.Rmdir(op.path);
    case core::OpType::kStat: {
      auto r = co_await client.Stat(op.path);
      co_return r.status();
    }
    case core::OpType::kStatDir: {
      auto r = co_await client.StatDir(op.path);
      co_return r.status();
    }
    case core::OpType::kReaddir: {
      auto r = co_await client.Readdir(op.path);
      co_return r.status();
    }
    case core::OpType::kReaddirPage: {
      // Paged scan: drive the v2 stream explicitly (Readdir() would hide the
      // handle lifecycle; benches want the open/page/close shape on the wire).
      auto handle = co_await client.OpenDir(op.path);
      if (!handle.ok()) {
        co_return handle.status();
      }
      uint64_t cookie = core::kDirStreamStart;
      Status result = OkStatus();
      while (true) {
        auto page = co_await client.ReaddirPage(*handle, cookie);
        if (!page.ok()) {
          result = page.status();
          break;
        }
        if (page->at_end) {
          break;
        }
        cookie = page->next_cookie;
      }
      (void)co_await client.CloseDir(*handle);
      co_return result;
    }
    case core::OpType::kBulkInsert: {
      // Bulk create: one open handle, one multi-entry insert, close. `batch`
      // holds bare names; `path` is the parent directory.
      auto handle = co_await client.OpenDir(op.path);
      if (!handle.ok()) {
        co_return handle.status();
      }
      auto verdicts = co_await client.BulkInsert(*handle, op.batch);
      Status result = OkStatus();
      for (const Status& s : verdicts) {
        if (!s.ok()) {
          result = s;
          break;
        }
      }
      (void)co_await client.CloseDir(*handle);
      co_return result;
    }
    case core::OpType::kBatchStat: {
      auto results = co_await client.BatchStat(op.batch);
      for (const auto& r : results) {
        if (!r.ok()) {
          co_return r.status();
        }
      }
      co_return OkStatus();
    }
    case core::OpType::kChmod:  // pre-v2 tag for the same op class
    case core::OpType::kSetAttr: {
      // chmod-class delta; 0640/0641 differ from the 0644 creation default,
      // so the first setattr per file always commits through the WAL.
      core::AttrDelta delta;
      delta.set_mode = true;
      delta.mode = 0640 | (op.path.size() & 1);
      co_return co_await client.SetAttr(op.path, delta);
    }
    case core::OpType::kOpen: {
      auto r = co_await client.Open(op.path);
      if (r.ok() && data != nullptr && op.io_bytes > 0) {
        co_await data->Transfer(op.path, op.io_bytes);
      }
      co_return r.status();
    }
    case core::OpType::kClose:
      co_return co_await client.Close(op.path);
    case core::OpType::kRename:
      co_return co_await client.Rename(op.path, op.path2);
    default:
      co_return InvalidArgumentError("unsupported op");
  }
}

sim::Task<void> Worker(core::FsWorld* world,
                       std::shared_ptr<core::MetadataService> client,
                       std::shared_ptr<SharedState> st) {
  sim::Simulator& sim = world->world_sim();
  while (true) {
    if (st->config.total_ops != 0 && st->issued >= st->config.total_ops) {
      co_return;
    }
    auto op = st->stream->Next(st->rng);
    if (!op.has_value()) {
      st->exhausted = true;
      co_return;
    }
    const uint64_t index = st->issued++;
    const sim::SimTime start = sim.Now();
    if (index == st->config.warmup_ops) {
      st->window_start = start;
    }
    Status s = co_await Execute(*client, *op, st->config.data);
    const sim::SimTime end = sim.Now();
    st->completed++;
    if (!s.ok()) {
      st->failed++;
    }
    if (index >= st->config.warmup_ops) {
      st->latency.Record(end - start);
      st->measured++;
      st->window_end = end;
    }
  }
}

}  // namespace

RunResult RunWorkload(core::FsWorld& world, OpStream& stream,
                      const RunnerConfig& config) {
  auto st = std::make_shared<SharedState>();
  st->stream = &stream;
  st->config = config;
  st->rng.Seed(config.seed);

  std::vector<std::shared_ptr<core::MetadataService>> clients;
  clients.reserve(config.workers);
  for (int w = 0; w < config.workers; ++w) {
    clients.emplace_back(world.NewClient(/*warm=*/true));
  }
  for (int w = 0; w < config.workers; ++w) {
    sim::Spawn(Worker(&world, clients[w], st));
  }
  world.world_sim().Run();

  RunResult result;
  result.completed = st->measured;
  result.failed = st->failed;
  result.elapsed = st->window_end - st->window_start;
  result.latency = std::move(st->latency);
  return result;
}

}  // namespace switchfs::wl
