// Closed-loop workload runner: W worker coroutines (the paper's "in-flight
// requests", §7.2) each drawing operations from a shared stream, executing
// them against any FsWorld, and recording per-op latency into a histogram.
// Throughput is completed-ops / simulated-time over the measured window.
#ifndef SRC_WORKLOAD_RUNNER_H_
#define SRC_WORKLOAD_RUNNER_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/core/fs_world.h"
#include "src/core/types.h"
#include "src/sim/time.h"

namespace switchfs::wl {

struct Op {
  core::OpType type = core::OpType::kStat;
  std::string path;
  std::string path2;      // rename destination
  uint64_t io_bytes = 0;  // data read/write volume (end-to-end runs)
  bool is_data_read = false;
  bool is_data_write = false;
  // v2 op kinds:
  //  * kReaddirPage — paged scan: OpenDir(path), drain the page stream,
  //    CloseDir; one Op covers the whole scan.
  //  * kBatchStat — stat burst: one BatchStat over `batch`.
  //  * kSetAttr — chmod-class delta on `path` (kChmod maps here too).
  std::vector<std::string> batch;
};

// A stream of operations. Next() returns nullopt when the workload is
// exhausted (bounded streams); unbounded streams never return nullopt and
// the runner stops at RunnerConfig::total_ops.
class OpStream {
 public:
  virtual ~OpStream() = default;
  virtual std::optional<Op> Next(Rng& rng) = 0;
};

// Simulated data-node tier for end-to-end workloads (Fig 19): N data nodes,
// each a bandwidth-limited queue; requests are routed by path hash.
class DataService;

struct RunnerConfig {
  int workers = 64;            // concurrent in-flight operations
  uint64_t total_ops = 50000;  // measured + warmup (0 = run stream dry)
  uint64_t warmup_ops = 2000;
  uint64_t seed = 1;
  DataService* data = nullptr;  // optional data tier
};

struct RunResult {
  uint64_t completed = 0;
  uint64_t failed = 0;
  sim::SimTime elapsed = 0;  // measured window (post-warmup)
  Histogram latency;         // nanoseconds, post-warmup ops

  double ThroughputOpsPerSec() const {
    if (elapsed <= 0) {
      return 0.0;
    }
    return static_cast<double>(completed) / sim::ToSeconds(elapsed);
  }
  double MeanLatencyUs() const { return latency.Mean() / 1000.0; }
  double PercentileUs(double q) const {
    return static_cast<double>(latency.Percentile(q)) / 1000.0;
  }
};

// Runs the stream against the world until `total_ops` complete (or the
// stream is exhausted). Drains the simulation afterwards so deferred work
// (pushes, aggregations) is included in the world's end state.
RunResult RunWorkload(core::FsWorld& world, OpStream& stream,
                      const RunnerConfig& config);

}  // namespace switchfs::wl

#endif  // SRC_WORKLOAD_RUNNER_H_
