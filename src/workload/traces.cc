#include "src/workload/traces.h"

#include "src/common/random.h"
#include "src/core/types.h"

namespace switchfs::wl {

namespace {

void Shuffle(std::vector<size_t>& v, Rng& rng) {
  for (size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng.NextBelow(i)]);
  }
}

}  // namespace

CvTrainingTrace::CvTrainingTrace(std::vector<std::string> dirs,
                                 const TraceConfig& config) {
  Rng rng(config.seed);
  std::vector<std::string> files;
  files.reserve(dirs.size() * config.files_per_dir);
  for (const std::string& d : dirs) {
    for (int i = 0; i < config.files_per_dir; ++i) {
      files.push_back(d + "/img" + std::to_string(i));
    }
  }

  // Phase 1 — dataset download: create + write each file.
  for (const std::string& f : files) {
    Op op;
    op.type = core::OpType::kCreate;
    op.path = f;
    if (config.with_data) {
      op.io_bytes = config.file_bytes;
      op.is_data_write = true;
    }
    script_.push_back(op);
  }

  // Phase 2 — training epochs: stat + open(+read) every file, random order.
  std::vector<size_t> order(files.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  for (int e = 0; e < config.epochs; ++e) {
    Shuffle(order, rng);
    for (size_t idx : order) {
      Op st;
      st.type = core::OpType::kStat;
      st.path = files[idx];
      script_.push_back(st);
      Op rd;
      rd.type = core::OpType::kOpen;
      rd.path = files[idx];
      if (config.with_data) {
        rd.io_bytes = config.file_bytes;
        rd.is_data_read = true;
      }
      script_.push_back(rd);
      Op cl;
      cl.type = core::OpType::kClose;
      cl.path = files[idx];
      script_.push_back(cl);
    }
  }

  // Phase 3 — dataset removal.
  Shuffle(order, rng);
  for (size_t idx : order) {
    Op op;
    op.type = core::OpType::kUnlink;
    op.path = files[idx];
    script_.push_back(op);
  }
}

std::optional<Op> CvTrainingTrace::Next(Rng& /*rng*/) {
  if (next_ >= script_.size()) {
    return std::nullopt;
  }
  return script_[next_++];
}

ThumbnailTrace::ThumbnailTrace(std::vector<std::string> dirs,
                               const TraceConfig& config) {
  Rng rng(config.seed);
  for (const std::string& d : dirs) {
    for (int i = 0; i < config.files_per_dir; ++i) {
      const std::string src = d + "/img" + std::to_string(i);
      // open + read the source image...
      Op open;
      open.type = core::OpType::kOpen;
      open.path = src;
      if (config.with_data) {
        open.io_bytes = config.file_bytes;
        open.is_data_read = true;
      }
      script_.push_back(open);
      Op st;
      st.type = core::OpType::kStat;
      st.path = src;
      script_.push_back(st);
      // ...then create + write the thumbnail next to it.
      Op thumb;
      thumb.type = core::OpType::kCreate;
      thumb.path = d + "/thumb" + std::to_string(i);
      if (config.with_data) {
        thumb.io_bytes = config.file_bytes / 8;
        thumb.is_data_write = true;
      }
      script_.push_back(thumb);
      Op close;
      close.type = core::OpType::kClose;
      close.path = src;
      script_.push_back(close);
    }
  }
}

std::optional<Op> ThumbnailTrace::Next(Rng& /*rng*/) {
  if (next_ >= script_.size()) {
    return std::nullopt;
  }
  return script_[next_++];
}

}  // namespace switchfs::wl
