// Real-world trace models (paper §7.6, Tab 5):
//  * CV-training: the full lifecycle of an image dataset — download (create
//    + write every file), training epochs (open/stat/read files in random
//    order), and removal (delete everything). ~1000 directories of small
//    files, modeled after the ALEXNET-on-ImageNet trace.
//  * Thumbnail: read each source image, create + write its thumbnail.
// Both are bounded streams replayed through the standard runner.
#ifndef SRC_WORKLOAD_TRACES_H_
#define SRC_WORKLOAD_TRACES_H_

#include <string>
#include <vector>

#include "src/workload/runner.h"

namespace switchfs::wl {

struct TraceConfig {
  int num_dirs = 100;
  int files_per_dir = 100;
  int epochs = 1;               // CV training read passes
  uint64_t file_bytes = 128 * 1024;  // "mostly under 256KB"
  bool with_data = true;        // issue data transfers
  uint64_t seed = 7;
};

// CV-training lifecycle. Directories must NOT be preloaded with files (the
// trace creates them); the dirs themselves must exist.
class CvTrainingTrace : public OpStream {
 public:
  CvTrainingTrace(std::vector<std::string> dirs, const TraceConfig& config);
  std::optional<Op> Next(Rng& rng) override;
  size_t total_ops() const { return script_.size(); }

 private:
  std::vector<Op> script_;
  size_t next_ = 0;
};

// Thumbnail generation: sources must be preloaded as "<dir>/img<i>".
class ThumbnailTrace : public OpStream {
 public:
  ThumbnailTrace(std::vector<std::string> dirs, const TraceConfig& config);
  std::optional<Op> Next(Rng& rng) override;
  size_t total_ops() const { return script_.size(); }

 private:
  std::vector<Op> script_;
  size_t next_ = 0;
};

}  // namespace switchfs::wl

#endif  // SRC_WORKLOAD_TRACES_H_
