// Shared fixture for SwitchFS cluster tests: builds a small cluster, runs
// client coroutines to completion, and provides quiesce/verify helpers.
#ifndef TESTS_SWITCHFS_TEST_UTIL_H_
#define TESTS_SWITCHFS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/cluster.h"

namespace switchfs::core {

inline ClusterConfig SmallClusterConfig(uint32_t servers = 4) {
  ClusterConfig cfg;
  cfg.num_servers = servers;
  cfg.cores_per_server = 4;
  // Keep the switch model small so tests construct quickly.
  cfg.switch_config.dirty_set.num_stages = 6;
  cfg.switch_config.dirty_set.registers_per_stage = 4096;
  cfg.switch_config.num_pipes = 2;
  return cfg;
}

class FsHarness {
 public:
  explicit FsHarness(ClusterConfig cfg = SmallClusterConfig())
      : cluster(std::move(cfg)), client(cluster.MakeClient()) {}

  // Runs a client script to completion, then drains the simulation (pushes,
  // proactive aggregations, timers) so post-conditions are stable.
  void Run(sim::Task<void> script) {
    sim::Spawn(std::move(script));
    cluster.sim().Run();
  }

  Status Mkdir(const std::string& path) {
    Status out = InternalError("not run");
    Run([](SwitchFsClient* c, const std::string p, Status* o) -> sim::Task<void> {
      *o = co_await c->Mkdir(p);
    }(client.get(), path, &out));
    return out;
  }
  Status Create(const std::string& path) {
    Status out = InternalError("not run");
    Run([](SwitchFsClient* c, const std::string p, Status* o) -> sim::Task<void> {
      *o = co_await c->Create(p);
    }(client.get(), path, &out));
    return out;
  }
  Status Unlink(const std::string& path) {
    Status out = InternalError("not run");
    Run([](SwitchFsClient* c, const std::string p, Status* o) -> sim::Task<void> {
      *o = co_await c->Unlink(p);
    }(client.get(), path, &out));
    return out;
  }
  Status Rmdir(const std::string& path) {
    Status out = InternalError("not run");
    Run([](SwitchFsClient* c, const std::string p, Status* o) -> sim::Task<void> {
      *o = co_await c->Rmdir(p);
    }(client.get(), path, &out));
    return out;
  }
  StatusOr<Attr> Stat(const std::string& path) {
    StatusOr<Attr> out = InternalError("not run");
    Run([](SwitchFsClient* c, const std::string p,
           StatusOr<Attr>* o) -> sim::Task<void> {
      *o = co_await c->Stat(p);
    }(client.get(), path, &out));
    return out;
  }
  StatusOr<Attr> StatDir(const std::string& path) {
    StatusOr<Attr> out = InternalError("not run");
    Run([](SwitchFsClient* c, const std::string p,
           StatusOr<Attr>* o) -> sim::Task<void> {
      *o = co_await c->StatDir(p);
    }(client.get(), path, &out));
    return out;
  }
  StatusOr<std::vector<DirEntry>> Readdir(const std::string& path) {
    StatusOr<std::vector<DirEntry>> out = InternalError("not run");
    Run([](SwitchFsClient* c, const std::string p,
           StatusOr<std::vector<DirEntry>>* o) -> sim::Task<void> {
      *o = co_await c->Readdir(p);
    }(client.get(), path, &out));
    return out;
  }
  Status Rename(const std::string& from, const std::string& to) {
    Status out = InternalError("not run");
    Run([](SwitchFsClient* c, const std::string f, const std::string t,
           Status* o) -> sim::Task<void> {
      *o = co_await c->Rename(f, t);
    }(client.get(), from, to, &out));
    return out;
  }

  Cluster cluster;
  std::unique_ptr<SwitchFsClient> client;
};

}  // namespace switchfs::core

#endif  // TESTS_SWITCHFS_TEST_UTIL_H_
