// MetadataService v2 suite: directory handles, cookie-paged readdir, batched
// lookups, and setattr — run against ALL FIVE systems (SwitchFS + the four
// baselines) through the shared interface, plus SwitchFS-specific property
// and fault tests:
//  * paged streams match the monolithic listing, fill pages to the
//    mtu_bytes budget (mtu_entries is only a hard cap), and neither drop a
//    pre-open entry nor duplicate across pages under a concurrent
//    create/unlink/rename storm (4 seeds x snapshot/cursor sessions),
//  * cursor sessions survive unlink-at-cursor and rename-of-next-entry,
//  * sessions expire (stale cookie), die with an owner crash mid-scan, and
//    are LRU-evicted past the table-wide cap,
//  * the prefetching Readdir recovers from an owner crash with speculative
//    pages in flight,
//  * BatchStat groups by owner and returns per-target verdicts,
//  * BulkInsert returns per-name verdicts, batches packets, and survives
//    owner crashes with no committed entry lost,
//  * SetAttr commits durably and round-trips through Stat.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/baselines/baseline.h"
#include "src/common/random.h"
#include "src/common/strings.h"
#include "tests/switchfs_test_util.h"

namespace switchfs::core {
namespace {

// Byte-budget paging: pages fill to mtu_bytes of entry wire data
// (DirEntryWireSize each); mtu_entries is only the hard entry-count cap.
// Both match the config defaults in every factory below.
constexpr int kPageEntryCap = 128;
constexpr int kPageByteBudget = 1400;

// Greedy packing over the KV-sorted name set — mirrors how every system
// fills pages, so the stream's page count is exactly predictable.
int ExpectedPageCount(const std::set<std::string>& names) {
  int pages = 1;
  size_t used = 0;
  int count = 0;
  for (const std::string& n : names) {
    if (!PageHasRoom(used, count, DirEntryWireSize(n), kPageByteBudget,
                     kPageEntryCap)) {
      ++pages;
      used = 0;
      count = 0;
    }
    used += DirEntryWireSize(n);
    ++count;
  }
  return pages;
}

// A page is over budget if it exceeds the entry cap, or packs more wire
// bytes than mtu_bytes (a single oversized entry is always admitted).
bool PageOverBudget(const std::vector<DirEntry>& entries) {
  if (entries.size() > static_cast<size_t>(kPageEntryCap)) {
    return true;
  }
  size_t used = 0;
  for (const DirEntry& e : entries) {
    used += DirEntryWireSize(e.name);
  }
  return entries.size() > 1 && used > static_cast<size_t>(kPageByteBudget);
}

// ---------------------------------------------------------------------------
// Five-system harness over the shared interface
// ---------------------------------------------------------------------------

std::unique_ptr<FsWorld> MakeSystem(const std::string& name,
                                    sim::SimTime session_ttl) {
  if (name == "SwitchFS") {
    ClusterConfig cfg = SmallClusterConfig(4);
    cfg.server_template.dir_session_ttl = session_ttl;
    return std::make_unique<Cluster>(cfg);
  }
  baselines::BaselineConfig cfg;
  cfg.num_servers = 4;
  cfg.dir_session_ttl = session_ttl;
  if (name == "Emulated-InfiniFS") {
    cfg.kind = baselines::SystemKind::kEInfiniFS;
  } else if (name == "Emulated-CFS") {
    cfg.kind = baselines::SystemKind::kECfs;
  } else if (name == "CephFS-sim") {
    cfg.kind = baselines::SystemKind::kCephFS;
  } else {
    cfg.kind = baselines::SystemKind::kIndexFS;
  }
  return std::make_unique<baselines::BaselineCluster>(cfg);
}

class V2Harness {
 public:
  explicit V2Harness(std::unique_ptr<FsWorld> w)
      : world(std::move(w)), client(world->NewClient(false)) {}

  void Run(sim::Task<void> script) {
    sim::Spawn(std::move(script));
    world->world_sim().Run();
  }

  Status Mkdir(const std::string& p) {
    Status out = InternalError("not run");
    Run([](MetadataService* c, std::string path, Status* o) -> sim::Task<void> {
      *o = co_await c->Mkdir(path);
    }(client.get(), p, &out));
    return out;
  }
  Status Create(const std::string& p) {
    Status out = InternalError("not run");
    Run([](MetadataService* c, std::string path, Status* o) -> sim::Task<void> {
      *o = co_await c->Create(path);
    }(client.get(), p, &out));
    return out;
  }
  StatusOr<Attr> Stat(const std::string& p) {
    StatusOr<Attr> out = InternalError("not run");
    Run([](MetadataService* c, std::string path,
           StatusOr<Attr>* o) -> sim::Task<void> {
      *o = co_await c->Stat(path);
    }(client.get(), p, &out));
    return out;
  }
  StatusOr<std::vector<DirEntry>> Readdir(const std::string& p) {
    StatusOr<std::vector<DirEntry>> out = InternalError("not run");
    Run([](MetadataService* c, std::string path,
           StatusOr<std::vector<DirEntry>>* o) -> sim::Task<void> {
      *o = co_await c->Readdir(path);
    }(client.get(), p, &out));
    return out;
  }
  Status SetAttr(const std::string& p, const AttrDelta& d) {
    Status out = InternalError("not run");
    Run([](MetadataService* c, std::string path, AttrDelta delta,
           Status* o) -> sim::Task<void> {
      *o = co_await c->SetAttr(path, delta);
    }(client.get(), p, d, &out));
    return out;
  }
  std::vector<StatusOr<Attr>> BatchStat(const std::vector<std::string>& ps) {
    std::vector<StatusOr<Attr>> out;
    Run([](MetadataService* c, std::vector<std::string> paths,
           std::vector<StatusOr<Attr>>* o) -> sim::Task<void> {
      *o = co_await c->BatchStat(paths);
    }(client.get(), ps, &out));
    return out;
  }

  std::unique_ptr<FsWorld> world;
  std::unique_ptr<MetadataService> client;
};

class ApiV2Suite : public ::testing::TestWithParam<std::string> {};

TEST_P(ApiV2Suite, PagedStreamMatchesListingAndBoundsPages) {
  V2Harness fs(MakeSystem(GetParam(), sim::Milliseconds(20)));
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  std::set<std::string> expected;
  for (int i = 0; i < 100; ++i) {
    const std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(fs.Create("/d/" + name).ok());
    expected.insert(name);
  }

  // Drive the handle lifecycle explicitly: open, drain pages, close.
  std::set<std::string> got;
  int pages = 0;
  bool dup = false;
  bool oversize = false;
  Status result = InternalError("not run");
  fs.Run([](MetadataService* c, std::set<std::string>* got, int* pages,
            bool* dup, bool* oversize, Status* result) -> sim::Task<void> {
    auto handle = co_await c->OpenDir("/d");
    if (!handle.ok()) {
      *result = handle.status();
      co_return;
    }
    uint64_t cookie = kDirStreamStart;
    while (true) {
      auto page = co_await c->ReaddirPage(*handle, cookie);
      if (!page.ok()) {
        *result = page.status();
        co_return;
      }
      (*pages)++;
      if (PageOverBudget(page->entries)) {
        *oversize = true;
      }
      for (const DirEntry& e : page->entries) {
        if (!got->insert(e.name).second) {
          *dup = true;
        }
      }
      if (page->at_end) {
        break;
      }
      cookie = page->next_cookie;
    }
    *result = co_await c->CloseDir(*handle);
  }(fs.client.get(), &got, &pages, &dup, &oversize, &result));

  EXPECT_TRUE(result.ok()) << result.ToString();
  EXPECT_FALSE(dup) << "duplicate entry across pages";
  EXPECT_FALSE(oversize) << "page exceeded the mtu budget";
  // at_end is set on the page that reaches the end, so the stream is exactly
  // the greedy byte-budget packing of the sorted listing — no short pages,
  // no empty tail.
  EXPECT_EQ(pages, ExpectedPageCount(expected));
  EXPECT_EQ(got, expected);

  // The Readdir convenience wrapper (paged under the hood) agrees.
  auto listing = fs.Readdir("/d");
  ASSERT_TRUE(listing.ok());
  std::set<std::string> via_readdir;
  for (const DirEntry& e : *listing) {
    via_readdir.insert(e.name);
  }
  EXPECT_EQ(via_readdir, expected);
}

TEST_P(ApiV2Suite, OpenDirErrorsMatchPosix) {
  V2Harness fs(MakeSystem(GetParam(), sim::Milliseconds(20)));
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  Status missing = InternalError("not run");
  Status nondir = InternalError("not run");
  fs.Run([](MetadataService* c, Status* missing,
            Status* nondir) -> sim::Task<void> {
    auto h1 = co_await c->OpenDir("/absent");
    *missing = h1.ok() ? OkStatus() : h1.status();
    auto h2 = co_await c->OpenDir("/d/f");
    *nondir = h2.ok() ? OkStatus() : h2.status();
  }(fs.client.get(), &missing, &nondir));
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_EQ(nondir.code(), StatusCode::kNotADirectory);
}

TEST_P(ApiV2Suite, SessionExpiryYieldsStaleHandle) {
  // Tight TTL so the wait between pages expires the owner-side session
  // (still above CephFS-sim's ~575us per-op stack, so the first page lives).
  V2Harness fs(MakeSystem(GetParam(), sim::Milliseconds(2)));
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(fs.Create("/d/f" + std::to_string(i)).ok());
  }
  Status first = InternalError("not run");
  Status second = InternalError("not run");
  fs.Run([](FsWorld* world, MetadataService* c, Status* first,
            Status* second) -> sim::Task<void> {
    auto handle = co_await c->OpenDir("/d");
    if (!handle.ok()) {
      *first = handle.status();
      co_return;
    }
    auto page = co_await c->ReaddirPage(*handle, kDirStreamStart);
    *first = page.ok() ? OkStatus() : page.status();
    // Sit past the inactivity TTL: the server-side watchdog reclaims the
    // snapshot, so the next cookie is stale.
    co_await sim::Delay(&world->world_sim(), sim::Milliseconds(20));
    auto late = co_await c->ReaddirPage(*handle, page.ok() ? page->next_cookie
                                                           : kDirStreamStart);
    *second = late.ok() ? OkStatus() : late.status();
    (void)co_await c->CloseDir(*handle);
  }(fs.world.get(), fs.client.get(), &first, &second));
  EXPECT_TRUE(first.ok()) << first.ToString();
  EXPECT_EQ(second.code(), StatusCode::kStaleHandle);

  // Readdir() recovers transparently by re-opening.
  auto listing = fs.Readdir("/d");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 40u);
}

TEST_P(ApiV2Suite, CloseDirInvalidatesTheHandle) {
  V2Harness fs(MakeSystem(GetParam(), sim::Milliseconds(20)));
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  Status page_after_close = InternalError("not run");
  fs.Run([](MetadataService* c, Status* out) -> sim::Task<void> {
    auto handle = co_await c->OpenDir("/d");
    if (!handle.ok()) {
      *out = handle.status();
      co_return;
    }
    (void)co_await c->CloseDir(*handle);
    auto page = co_await c->ReaddirPage(*handle, kDirStreamStart);
    *out = page.ok() ? OkStatus() : page.status();
  }(fs.client.get(), &page_after_close));
  // The client-side handle is gone (and the server session released): a
  // page call must fail — either verdict of the two layers is acceptable.
  EXPECT_TRUE(page_after_close.code() == StatusCode::kInvalidArgument ||
              page_after_close.code() == StatusCode::kStaleHandle)
      << page_after_close.ToString();
}

TEST_P(ApiV2Suite, BatchStatReturnsPerTargetVerdicts) {
  V2Harness fs(MakeSystem(GetParam(), sim::Milliseconds(20)));
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/b").ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(fs.Create("/a/f" + std::to_string(i)).ok());
    ASSERT_TRUE(fs.Create("/b/g" + std::to_string(i)).ok());
  }
  // Targets span two directories (and so, on most placements, several
  // owners) plus missing names sprinkled in.
  std::vector<std::string> paths = {"/a/f0", "/b/g3", "/a/missing", "/a/f5",
                                    "/b/absent", "/b/g0", "/a/f2"};
  auto results = fs.BatchStat(paths);
  ASSERT_EQ(results.size(), paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    const bool should_exist = paths[i].find("miss") == std::string::npos &&
                              paths[i].find("absent") == std::string::npos;
    if (should_exist) {
      ASSERT_TRUE(results[i].ok()) << paths[i];
      EXPECT_FALSE(results[i]->is_dir()) << paths[i];
      // Cross-check against the single-path read path.
      auto single = fs.Stat(paths[i]);
      ASSERT_TRUE(single.ok()) << paths[i];
      EXPECT_EQ(results[i]->id, single->id) << paths[i];
    } else {
      EXPECT_EQ(results[i].status().code(), StatusCode::kNotFound) << paths[i];
    }
  }
}

TEST_P(ApiV2Suite, BulkInsertReturnsPerNameVerdicts) {
  V2Harness fs(MakeSystem(GetParam(), sim::Milliseconds(20)));
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/dup").ok());

  // One batch mixing fresh names, a pre-existing name, and an in-batch
  // duplicate: verdicts come back positionally, and only the admitted names
  // commit.
  const std::vector<std::string> names = {"a", "dup", "b", "a", "c"};
  std::vector<Status> verdicts;
  Status lifecycle = InternalError("not run");
  fs.Run([](MetadataService* c, std::vector<std::string> names,
            std::vector<Status>* verdicts, Status* out) -> sim::Task<void> {
    auto handle = co_await c->OpenDir("/d");
    if (!handle.ok()) {
      *out = handle.status();
      co_return;
    }
    *verdicts = co_await c->BulkInsert(*handle, names);
    *out = co_await c->CloseDir(*handle);
  }(fs.client.get(), names, &verdicts, &lifecycle));

  ASSERT_TRUE(lifecycle.ok()) << lifecycle.ToString();
  ASSERT_EQ(verdicts.size(), names.size());
  EXPECT_TRUE(verdicts[0].ok()) << verdicts[0].ToString();
  EXPECT_EQ(verdicts[1].code(), StatusCode::kAlreadyExists);  // pre-existing
  EXPECT_TRUE(verdicts[2].ok()) << verdicts[2].ToString();
  EXPECT_EQ(verdicts[3].code(), StatusCode::kAlreadyExists);  // in-batch dup
  EXPECT_TRUE(verdicts[4].ok()) << verdicts[4].ToString();

  // Committed entries are visible through the regular read paths.
  for (const std::string& n : std::vector<std::string>{"a", "b", "c"}) {
    auto st = fs.Stat("/d/" + n);
    EXPECT_TRUE(st.ok()) << n << ": " << st.status().ToString();
  }
  auto listing = fs.Readdir("/d");
  ASSERT_TRUE(listing.ok());
  std::set<std::string> got;
  for (const DirEntry& e : *listing) {
    got.insert(e.name);
  }
  EXPECT_EQ(got, (std::set<std::string>{"a", "b", "c", "dup"}));
}

TEST_P(ApiV2Suite, SetAttrCommitsModeAndTimes) {
  V2Harness fs(MakeSystem(GetParam(), sim::Milliseconds(20)));
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());

  AttrDelta delta;
  delta.set_mode = true;
  delta.mode = 0600;
  ASSERT_TRUE(fs.SetAttr("/d/f", delta).ok());
  auto st = fs.Stat("/d/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->mode, 0600u);

  AttrDelta times;
  times.set_times = true;
  times.mtime = st->mtime + 1000;
  times.atime = st->atime + 500;
  ASSERT_TRUE(fs.SetAttr("/d/f", times).ok());
  st = fs.Stat("/d/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->mode, 0600u);  // mode untouched by a times-only delta
  EXPECT_EQ(st->mtime, times.mtime);
  EXPECT_EQ(st->atime, times.atime);

  // Times only move forward (max-merge semantics, matching the deferred
  // entry applies).
  AttrDelta backwards;
  backwards.set_times = true;
  backwards.mtime = 1;
  ASSERT_TRUE(fs.SetAttr("/d/f", backwards).ok());
  st = fs.Stat("/d/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->mtime, times.mtime);

  EXPECT_EQ(fs.SetAttr("/d/none", delta).code(), StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(AllFiveSystems, ApiV2Suite,
                         ::testing::Values("SwitchFS", "Emulated-InfiniFS",
                                           "Emulated-CFS", "CephFS-sim",
                                           "IndexFS-sim"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

// ---------------------------------------------------------------------------
// SwitchFS property test: paged readdir under a create/unlink/rename storm
// ---------------------------------------------------------------------------

// Parameter: (seed, snapshot_sessions) — the storm must hold under both the
// O(1)-open KV-cursor sessions (default) and the frozen-snapshot lever.
class PagedReaddirStorm
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(PagedReaddirStorm, NoLostPreOpenEntryAndNoDuplicateAcrossPages) {
  const uint64_t seed = std::get<0>(GetParam());
  ClusterConfig cfg = SmallClusterConfig(4);
  cfg.seed = seed;
  cfg.server_template.snapshot_sessions = std::get<1>(GetParam());
  FsHarness fs(cfg);

  // Phase A (quiesced): the pre-open population the stream must not lose.
  ASSERT_TRUE(fs.Mkdir("/hot").ok());
  std::set<std::string> pre_open;
  for (int i = 0; i < 120; ++i) {
    const std::string name = "a" + std::to_string(i);
    ASSERT_TRUE(fs.Create("/hot/" + name).ok());
    pre_open.insert(name);
  }

  // Phase B: a slow scanner pages through the directory while workers storm
  // it with creates/unlinks/renames of THEIR OWN files (pre-open entries are
  // never touched, so the no-loss assertion is exact) and a renamer moves
  // the directory itself mid-scan (the snapshot session is pinned at the
  // owner that built it).
  std::vector<std::string> scanned;  // names in page order (dup check)
  bool oversize = false;
  Status scan_status = InternalError("not run");
  std::string current_dir = "/hot";

  auto scanner = fs.cluster.MakeClient();
  sim::Spawn([](sim::Simulator* sm, SwitchFsClient* c,
                std::vector<std::string>* scanned, bool* oversize,
                Status* out) -> sim::Task<void> {
    auto handle = co_await c->OpenDir("/hot");
    if (!handle.ok()) {
      *out = handle.status();
      co_return;
    }
    uint64_t cookie = kDirStreamStart;
    while (true) {
      auto page = co_await c->ReaddirPage(*handle, cookie);
      if (!page.ok()) {
        *out = page.status();
        co_return;
      }
      if (PageOverBudget(page->entries)) {
        *oversize = true;
      }
      for (const DirEntry& e : page->entries) {
        scanned->push_back(e.name);
      }
      if (page->at_end) {
        break;
      }
      cookie = page->next_cookie;
      // Slow scan: let the storm interleave between pages.
      co_await sim::Delay(sm, sim::Microseconds(15));
    }
    *out = co_await c->CloseDir(*handle);
  }(&fs.cluster.sim(), scanner.get(), &scanned, &oversize, &scan_status));

  constexpr int kWorkers = 3;
  constexpr int kOpsPerWorker = 40;
  std::vector<std::unique_ptr<SwitchFsClient>> clients;
  for (int w = 0; w < kWorkers; ++w) {
    clients.push_back(fs.cluster.MakeClient());
  }
  for (int w = 0; w < kWorkers; ++w) {
    sim::Spawn([](SwitchFsClient* c, const std::string* dir, int id,
                  uint64_t seed) -> sim::Task<void> {
      Rng rng(seed ^ (0xb00b5ULL * (id + 1)));
      std::vector<std::string> own;  // phase-B files this worker created
      int counter = 0;
      for (int i = 0; i < kOpsPerWorker; ++i) {
        const int action = static_cast<int>(rng.NextBelow(10));
        if (action < 5 || own.empty()) {
          const std::string name =
              "b" + std::to_string(id) + "_" + std::to_string(counter++);
          Status s = co_await c->Create(*dir + "/" + name);
          if (s.ok() || s.code() == StatusCode::kAlreadyExists) {
            own.push_back(name);
          }
        } else if (action < 8) {
          const size_t idx = rng.NextBelow(own.size());
          Status s = co_await c->Unlink(*dir + "/" + own[idx]);
          if (s.ok() || s.code() == StatusCode::kNotFound) {
            own[idx] = own.back();
            own.pop_back();
          }
        } else {
          const size_t idx = rng.NextBelow(own.size());
          const std::string to =
              "b" + std::to_string(id) + "_r" + std::to_string(counter++);
          Status s =
              co_await c->Rename(*dir + "/" + own[idx], *dir + "/" + to);
          if (s.ok()) {
            own[idx] = to;
          }
        }
      }
    }(clients[w].get(), &current_dir, w, seed));
  }
  // The directory itself moves mid-scan: pages must keep serving the pinned
  // snapshot from the session's owner.
  bool renamed = false;
  sim::Spawn([](sim::Simulator* sm, SwitchFsClient* c, std::string* dir,
                bool* renamed) -> sim::Task<void> {
    co_await sim::Delay(sm, sim::Microseconds(40));
    Status s = co_await c->Rename("/hot", "/hot_moved");
    if (s.ok()) {
      *dir = "/hot_moved";
      *renamed = true;
    }
  }(&fs.cluster.sim(), fs.client.get(), &current_dir, &renamed));

  fs.cluster.sim().Run();

  ASSERT_TRUE(scan_status.ok()) << scan_status.ToString();
  EXPECT_TRUE(renamed);
  EXPECT_FALSE(oversize) << "page exceeded the mtu budget";

  // No duplicate across pages.
  std::set<std::string> unique_names(scanned.begin(), scanned.end());
  EXPECT_EQ(unique_names.size(), scanned.size()) << "duplicate across pages";
  // No lost pre-open entry: every phase-A name appears (the storm never
  // touches them). Phase-B names may or may not appear — both are valid.
  for (const std::string& name : pre_open) {
    EXPECT_TRUE(unique_names.count(name) > 0) << "lost pre-open " << name;
  }

  // The directory is still exactly consistent at its final path after the
  // storm (the regular invariants hold alongside the stream semantics).
  auto listing = fs.Readdir(current_dir);
  ASSERT_TRUE(listing.ok());
  std::set<std::string> final_names;
  for (const DirEntry& e : *listing) {
    final_names.insert(e.name);
  }
  for (const std::string& name : pre_open) {
    EXPECT_TRUE(final_names.count(name) > 0) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PagedReaddirStorm,
    ::testing::Combine(::testing::Values(21, 22, 23, 24), ::testing::Bool()),
    [](const auto& info) {
      return std::string(std::get<1>(info.param) ? "snapshot" : "cursor") +
             "_seed" + std::to_string(std::get<0>(info.param));
    });

// ---------------------------------------------------------------------------
// SwitchFS property test: cursor-session edits AT the cursor
// ---------------------------------------------------------------------------

// The KV-cursor session keys its position by the last-returned name. The two
// sharpest edits are hitting that key directly: unlinking the exact cursor
// entry (the resume upper_bound must not skip the successor) and renaming
// the next, not-yet-returned entry (delete + reinsert past the cursor must
// surface it under its new name, once).
class CursorEditStorm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CursorEditStorm, UnlinkAtCursorAndRenameOfNextEntry) {
  ClusterConfig cfg = SmallClusterConfig(4);
  cfg.seed = GetParam();
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  std::set<std::string> untouched;
  for (int i = 0; i < 120; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "c%03d", i);
    ASSERT_TRUE(fs.Create(std::string("/d/") + buf).ok());
    untouched.insert(buf);
  }

  std::set<std::string> renamed_to;  // entries moved past the cursor mid-scan
  std::vector<std::string> scanned;
  Status status = InternalError("not run");
  fs.Run([](sim::Simulator* sm, SwitchFsClient* c,
            std::set<std::string>* untouched,
            std::set<std::string>* renamed_to,
            std::vector<std::string>* scanned, Status* out) -> sim::Task<void> {
    auto handle = co_await c->OpenDir("/d");
    if (!handle.ok()) {
      *out = handle.status();
      co_return;
    }
    uint64_t cookie = kDirStreamStart;
    while (true) {
      auto page = co_await c->ReaddirPage(*handle, cookie);
      if (!page.ok()) {
        *out = page.status();
        co_return;
      }
      for (const DirEntry& e : page->entries) {
        scanned->push_back(e.name);
      }
      if (page->at_end) {
        break;
      }
      cookie = page->next_cookie;
      if (page->entries.empty()) {
        continue;
      }
      // Unlink the exact last-returned name — the session's cursor key.
      const std::string last = page->entries.back().name;
      if (last[0] == 'c') {
        Status s = co_await c->Unlink("/d/" + last);
        if (s.ok()) {
          untouched->erase(last);
        }
      }
      // Rename the next expected entry out from under the scan. "z_" sorts
      // after every "c" name, so the entry re-enters ahead of the cursor.
      auto it = untouched->upper_bound(last);
      if (it != untouched->end()) {
        const std::string next = *it;
        Status s = co_await c->Rename("/d/" + next, "/d/z_" + next);
        if (s.ok()) {
          untouched->erase(next);
          renamed_to->insert("z_" + next);
        }
      }
      // Let the cross-server push flush (idle timeout 300us) so the edits
      // are in the owner's KV before the next page: the visibility of the
      // renamed-ahead entry is then deterministic, and the assertion tests
      // the cursor-skip logic rather than push latency.
      co_await sim::Delay(sm, sim::Milliseconds(1));
    }
    *out = co_await c->CloseDir(*handle);
  }(&fs.cluster.sim(), fs.client.get(), &untouched, &renamed_to, &scanned,
    &status));

  ASSERT_TRUE(status.ok()) << status.ToString();
  std::set<std::string> unique(scanned.begin(), scanned.end());
  EXPECT_EQ(unique.size(), scanned.size()) << "duplicate across pages";
  for (const std::string& name : untouched) {
    EXPECT_TRUE(unique.count(name) > 0) << "lost " << name;
  }
  for (const std::string& name : renamed_to) {
    EXPECT_TRUE(unique.count(name) > 0) << "lost renamed " << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CursorEditStorm,
                         ::testing::Values(31, 32, 33, 34),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// SwitchFS fault test: owner crash mid-scan
// ---------------------------------------------------------------------------

TEST(PagedReaddirFaults, OwnerCrashMidScanStalesTheHandleThenRecovers) {
  ClusterConfig cfg = SmallClusterConfig(4);
  FsHarness fs(cfg);
  // Protocol-created namespace: everything is WAL-backed, so the owner's
  // recovery rebuilds the directory (preload would be wiped by the crash).
  ASSERT_TRUE(fs.Mkdir("/big").ok());
  std::set<std::string> expected;
  for (int i = 0; i < 80; ++i) {
    const std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(fs.Create("/big/" + name).ok());
    expected.insert(name);
  }
  const psw::Fingerprint dir_fp = FingerprintOf(RootId(), "big");
  const uint32_t owner = fs.cluster.ring().Owner(dir_fp);

  Status first_page = InternalError("not run");
  Status page_after_crash = InternalError("not run");
  std::set<std::string> rescan;
  fs.Run([](Cluster* cluster, SwitchFsClient* c, uint32_t owner,
            Status* first_page, Status* page_after_crash,
            std::set<std::string>* rescan) -> sim::Task<void> {
    auto handle = co_await c->OpenDir("/big");
    if (!handle.ok()) {
      *first_page = handle.status();
      co_return;
    }
    auto page = co_await c->ReaddirPage(*handle, kDirStreamStart);
    *first_page = page.ok() ? OkStatus() : page.status();

    // The owner dies mid-scan: its session table is volatile, so the stream
    // cannot resume — the client must observe a dead handle, not silently
    // spliced pages.
    cluster->CrashServer(owner);
    auto dead = co_await c->ReaddirPage(
        *handle, page.ok() ? page->next_cookie : kDirStreamStart);
    *page_after_crash = dead.ok() ? OkStatus() : dead.status();
    (void)co_await c->CloseDir(*handle);

    co_await cluster->RecoverServer(owner);
    // A fresh scan after recovery sees the complete listing.
    auto listing = co_await c->Readdir("/big");
    if (listing.ok()) {
      for (const DirEntry& e : *listing) {
        rescan->insert(e.name);
      }
    }
  }(&fs.cluster, fs.client.get(), owner, &first_page, &page_after_crash,
    &rescan));

  EXPECT_TRUE(first_page.ok()) << first_page.ToString();
  EXPECT_EQ(page_after_crash.code(), StatusCode::kStaleHandle)
      << page_after_crash.ToString();
  EXPECT_EQ(rescan, expected);
}

TEST(PagedReaddirFaults, PrefetchedScanSurvivesOwnerCrashViaRescan) {
  // The pipelined Readdir keeps speculative page RPCs in flight; an owner
  // crash mid-scan stales the whole pipeline at once. The client must fold
  // that into ONE restart — never splice prefetched pages from the dead
  // session into the fresh scan (no dup, no loss in the final listing).
  ClusterConfig cfg = SmallClusterConfig(4);
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/big").ok());
  std::set<std::string> expected;
  for (int i = 0; i < 300; ++i) {
    const std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(fs.Create("/big/" + name).ok());
    expected.insert(name);
  }
  const uint32_t owner =
      fs.cluster.ring().Owner(FingerprintOf(RootId(), "big"));

  StatusOr<std::vector<DirEntry>> listing = InternalError("not run");
  auto scanner = fs.cluster.MakeClient();
  sim::Spawn([](SwitchFsClient* c,
                StatusOr<std::vector<DirEntry>>* out) -> sim::Task<void> {
    *out = co_await c->Readdir("/big");  // prefetch_pages-deep pipeline
  }(scanner.get(), &listing));
  sim::Spawn([](Cluster* cluster, uint32_t owner) -> sim::Task<void> {
    // Crash while the scan has prefetched pages in flight, then recover so
    // the client's stale-handle restart can complete.
    co_await sim::Delay(&cluster->sim(), sim::Microseconds(30));
    cluster->CrashServer(owner);
    co_await cluster->RecoverServer(owner);
  }(&fs.cluster, owner));
  fs.cluster.sim().Run();

  ASSERT_TRUE(listing.ok()) << listing.status().ToString();
  std::set<std::string> got;
  for (const DirEntry& e : *listing) {
    EXPECT_TRUE(got.insert(e.name).second) << "duplicate " << e.name;
  }
  EXPECT_EQ(got, expected);
}

// ---------------------------------------------------------------------------
// SwitchFS BulkInsert: batching, durability, eviction
// ---------------------------------------------------------------------------

TEST(BulkInsertTest, CommittedBatchSurvivesOwnerCrashes) {
  ClusterConfig cfg = SmallClusterConfig(4);
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  std::vector<std::string> names;
  for (int i = 0; i < 40; ++i) {
    names.push_back("k" + std::to_string(i));
  }

  std::vector<Status> verdicts;
  Status lifecycle = InternalError("not run");
  fs.Run([](SwitchFsClient* c, std::vector<std::string> names,
            std::vector<Status>* verdicts, Status* out) -> sim::Task<void> {
    auto handle = co_await c->OpenDir("/d");
    if (!handle.ok()) {
      *out = handle.status();
      co_return;
    }
    *verdicts = co_await c->BulkInsert(*handle, names);
    *out = co_await c->CloseDir(*handle);
  }(fs.client.get(), names, &verdicts, &lifecycle));
  ASSERT_TRUE(lifecycle.ok()) << lifecycle.ToString();
  ASSERT_EQ(verdicts.size(), names.size());
  for (const Status& s : verdicts) {
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_EQ(fs.cluster.TotalStats().bulk_insert_entries, names.size());

  // Crash + recover every server in turn: each entry owner replays its
  // kWalBulkCommit records. No committed name may be lost.
  fs.Run([](Cluster* cluster) -> sim::Task<void> {
    for (uint32_t s = 0; s < 4; ++s) {
      cluster->CrashServer(s);
      co_await cluster->RecoverServer(s);
    }
  }(&fs.cluster));

  auto listing = fs.Readdir("/d");
  ASSERT_TRUE(listing.ok()) << listing.status().ToString();
  std::set<std::string> got;
  for (const DirEntry& e : *listing) {
    got.insert(e.name);
  }
  for (const std::string& n : names) {
    EXPECT_TRUE(got.count(n) > 0) << "lost committed " << n;
  }
}

TEST(BulkInsertTest, SendsFarFewerPacketsThanPerEntryCreates) {
  ClusterConfig cfg = SmallClusterConfig(4);
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/loop").ok());
  ASSERT_TRUE(fs.Mkdir("/bulk").ok());
  constexpr int kN = 64;

  uint64_t before = fs.cluster.network().stats().packets_sent;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(fs.Create("/loop/e" + std::to_string(i)).ok());
  }
  const uint64_t loop_packets =
      fs.cluster.network().stats().packets_sent - before;

  std::vector<std::string> names;
  for (int i = 0; i < kN; ++i) {
    names.push_back("e" + std::to_string(i));
  }
  std::vector<Status> verdicts;
  Status lifecycle = InternalError("not run");
  before = fs.cluster.network().stats().packets_sent;
  fs.Run([](SwitchFsClient* c, std::vector<std::string> names,
            std::vector<Status>* verdicts, Status* out) -> sim::Task<void> {
    auto handle = co_await c->OpenDir("/bulk");
    if (!handle.ok()) {
      *out = handle.status();
      co_return;
    }
    *verdicts = co_await c->BulkInsert(*handle, names);
    *out = co_await c->CloseDir(*handle);
  }(fs.client.get(), names, &verdicts, &lifecycle));
  const uint64_t bulk_packets =
      fs.cluster.network().stats().packets_sent - before;
  ASSERT_TRUE(lifecycle.ok()) << lifecycle.ToString();
  for (const Status& s : verdicts) {
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  // N per-entry creates are N full round trips; the bulk path is one chunk
  // per (owner, page-fill) — a handful of packets total. 4x headroom keeps
  // the bound robust to push/ack traffic counted in both windows.
  EXPECT_LT(bulk_packets * 4, loop_packets)
      << "bulk=" << bulk_packets << " loop=" << loop_packets;
  EXPECT_GE(fs.cluster.TotalStats().bulk_inserts, 1u);
}

TEST(DirSessionEviction, TableCapEvictsLruAndSurfacesStaleHandle) {
  ClusterConfig cfg = SmallClusterConfig(4);
  // The configured cap divides across the server's fingerprint-group shards
  // (sessions for one directory all land on its group's shard): 8 over the
  // default 4 shards = 2 sessions per shard.
  cfg.server_template.max_dir_sessions = 8;
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs.Create("/d/f" + std::to_string(i)).ok());
  }

  Status oldest = InternalError("not run");
  Status newest = InternalError("not run");
  fs.Run([](SwitchFsClient* c, Status* oldest,
            Status* newest) -> sim::Task<void> {
    // Five concurrent sessions land in one owner's table; cap 2 keeps only
    // the two most recently touched, evicting the other three LRU-first.
    std::vector<DirHandle> handles;
    for (int i = 0; i < 5; ++i) {
      auto h = co_await c->OpenDir("/d");
      if (!h.ok()) {
        *oldest = h.status();
        co_return;
      }
      handles.push_back(*h);
    }
    auto p_old = co_await c->ReaddirPage(handles[0], kDirStreamStart);
    *oldest = p_old.ok() ? OkStatus() : p_old.status();
    auto p_new = co_await c->ReaddirPage(handles[4], kDirStreamStart);
    *newest = p_new.ok() ? OkStatus() : p_new.status();
    for (const DirHandle& h : handles) {
      (void)co_await c->CloseDir(h);
    }
  }(fs.client.get(), &oldest, &newest));

  EXPECT_EQ(oldest.code(), StatusCode::kStaleHandle) << oldest.ToString();
  EXPECT_TRUE(newest.ok()) << newest.ToString();
  EXPECT_EQ(fs.cluster.TotalStats().dir_sessions_evicted, 3u);
}

// ---------------------------------------------------------------------------
// DirSessionTable unit semantics (no cluster)
// ---------------------------------------------------------------------------

TEST(DirSessionTableTest, PagingExpiryAndEpochSeparation) {
  DirSessionTable table(/*epoch=*/0);
  std::vector<DirEntry> entries;
  for (int i = 0; i < 10; ++i) {
    entries.push_back(DirEntry{"e" + std::to_string(i), FileType::kFile});
  }
  DirSession& s = table.Open(RootId(), entries, /*now=*/100);
  EXPECT_EQ(table.size(), 1u);

  // Pages: bounded, ordered, exhaustive, idempotent tail.
  DirPage p1 = DirSessionTable::PageOf(s, kDirStreamStart, 4);
  EXPECT_EQ(p1.entries.size(), 4u);
  EXPECT_FALSE(p1.at_end);
  DirPage p2 = DirSessionTable::PageOf(s, p1.next_cookie, 4);
  DirPage p3 = DirSessionTable::PageOf(s, p2.next_cookie, 4);
  EXPECT_EQ(p3.entries.size(), 2u);
  EXPECT_TRUE(p3.at_end);
  DirPage tail = DirSessionTable::PageOf(s, p3.next_cookie, 4);
  EXPECT_TRUE(tail.at_end);
  EXPECT_TRUE(tail.entries.empty());
  DirPage beyond = DirSessionTable::PageOf(s, 10'000, 4);
  EXPECT_TRUE(beyond.at_end);

  // TTL: touch refreshes, idle expires.
  const uint64_t id = s.id;
  EXPECT_NE(table.Touch(id, 150, /*ttl=*/100), nullptr);
  EXPECT_FALSE(table.ExpireIfIdle(id, 200, /*ttl=*/100));
  EXPECT_TRUE(table.ExpireIfIdle(id, 1000, /*ttl=*/100));
  EXPECT_EQ(table.Touch(id, 1000, /*ttl=*/100), nullptr);
  EXPECT_EQ(table.size(), 0u);

  // Sessions of different incarnations can never alias.
  DirSessionTable later_epoch(/*epoch=*/7);
  DirSession& s2 = later_epoch.Open(RootId(), entries, 0);
  DirSessionTable epoch0(/*epoch=*/0);
  DirSession& s3 = epoch0.Open(RootId(), entries, 0);
  EXPECT_NE(s2.id, s3.id);
}

}  // namespace
}  // namespace switchfs::core
