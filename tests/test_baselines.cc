// Baseline-system tests: parameterized POSIX-correctness suite across all
// four emulated comparators, plus placement assertions that pin down the
// structural behaviours the paper's motivation relies on (P/C grouping
// hotspots vs P/C separation balance, Tab 1 / Fig 2).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/baselines/baseline.h"

namespace switchfs::baselines {
namespace {

using core::Attr;
using core::DirEntry;
using core::MetadataService;

class BaselineHarness {
 public:
  explicit BaselineHarness(SystemKind kind, uint32_t servers = 4) {
    BaselineConfig cfg;
    cfg.kind = kind;
    cfg.num_servers = servers;
    cluster = std::make_unique<BaselineCluster>(cfg);
    client = cluster->NewClient(false);
  }

  void Run(sim::Task<void> script) {
    sim::Spawn(std::move(script));
    cluster->sim().Run();
  }

  Status Mkdir(const std::string& p) { return RunStatus(&MetadataService::Mkdir, p); }
  Status Create(const std::string& p) { return RunStatus(&MetadataService::Create, p); }
  Status Unlink(const std::string& p) { return RunStatus(&MetadataService::Unlink, p); }
  Status Rmdir(const std::string& p) { return RunStatus(&MetadataService::Rmdir, p); }

  StatusOr<Attr> Stat(const std::string& p) {
    StatusOr<Attr> out = InternalError("");
    Run([](MetadataService* c, std::string path, StatusOr<Attr>* o) -> sim::Task<void> {
      *o = co_await c->Stat(path);
    }(client.get(), p, &out));
    return out;
  }
  StatusOr<Attr> StatDir(const std::string& p) {
    StatusOr<Attr> out = InternalError("");
    Run([](MetadataService* c, std::string path, StatusOr<Attr>* o) -> sim::Task<void> {
      *o = co_await c->StatDir(path);
    }(client.get(), p, &out));
    return out;
  }
  StatusOr<std::vector<DirEntry>> Readdir(const std::string& p) {
    StatusOr<std::vector<DirEntry>> out = InternalError("");
    Run([](MetadataService* c, std::string path,
           StatusOr<std::vector<DirEntry>>* o) -> sim::Task<void> {
      *o = co_await c->Readdir(path);
    }(client.get(), p, &out));
    return out;
  }
  Status Rename(const std::string& f, const std::string& t) {
    Status out = InternalError("");
    Run([](MetadataService* c, std::string from, std::string to,
           Status* o) -> sim::Task<void> {
      *o = co_await c->Rename(from, to);
    }(client.get(), f, t, &out));
    return out;
  }

  std::unique_ptr<BaselineCluster> cluster;
  std::unique_ptr<MetadataService> client;

 private:
  using StatusFn = sim::Task<Status> (MetadataService::*)(const std::string&);
  Status RunStatus(StatusFn fn, const std::string& p) {
    Status out = InternalError("");
    Run([](MetadataService* c, StatusFn f, std::string path,
           Status* o) -> sim::Task<void> {
      *o = co_await (c->*f)(path);
    }(client.get(), fn, p, &out));
    return out;
  }
};

class BaselineSuite : public ::testing::TestWithParam<SystemKind> {};

TEST_P(BaselineSuite, BasicRoundTrip) {
  BaselineHarness fs(GetParam());
  EXPECT_TRUE(fs.Mkdir("/a").ok());
  EXPECT_TRUE(fs.Create("/a/f").ok());
  auto st = fs.Stat("/a/f");
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st->is_dir());
  auto sd = fs.StatDir("/a");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 1u);
}

TEST_P(BaselineSuite, CreateVisibilityIsImmediate) {
  // Synchronous systems apply the parent update on the create path itself.
  BaselineHarness fs(GetParam());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs.Create("/d/f" + std::to_string(i)).ok());
    auto sd = fs.StatDir("/d");
    ASSERT_TRUE(sd.ok());
    EXPECT_EQ(sd->size, static_cast<uint64_t>(i + 1));
  }
}

TEST_P(BaselineSuite, ErrorsMatchPosix) {
  BaselineHarness fs(GetParam());
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Create("/a/f").ok());
  EXPECT_EQ(fs.Create("/a/f").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(fs.Stat("/a/missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fs.Unlink("/a").code(), StatusCode::kIsADirectory);
  EXPECT_EQ(fs.Rmdir("/a").code(), StatusCode::kNotEmpty);
  ASSERT_TRUE(fs.Unlink("/a/f").ok());
  EXPECT_TRUE(fs.Rmdir("/a").ok());
  EXPECT_EQ(fs.StatDir("/a").status().code(), StatusCode::kNotFound);
}

TEST_P(BaselineSuite, ReaddirListsEntries) {
  BaselineHarness fs(GetParam());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  std::set<std::string> expected;
  for (int i = 0; i < 15; ++i) {
    const std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(fs.Create("/d/" + name).ok());
    expected.insert(name);
  }
  auto entries = fs.Readdir("/d");
  ASSERT_TRUE(entries.ok());
  std::set<std::string> got;
  for (const DirEntry& e : *entries) {
    got.insert(e.name);
  }
  EXPECT_EQ(got, expected);
}

TEST_P(BaselineSuite, DeepPaths) {
  BaselineHarness fs(GetParam());
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/a/b").ok());
  ASSERT_TRUE(fs.Mkdir("/a/b/c").ok());
  ASSERT_TRUE(fs.Create("/a/b/c/f").ok());
  EXPECT_TRUE(fs.Stat("/a/b/c/f").ok());
  auto sd = fs.StatDir("/a/b/c");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 1u);
}

TEST_P(BaselineSuite, RenameFile) {
  BaselineHarness fs(GetParam());
  ASSERT_TRUE(fs.Mkdir("/src").ok());
  ASSERT_TRUE(fs.Mkdir("/dst").ok());
  ASSERT_TRUE(fs.Create("/src/f").ok());
  ASSERT_TRUE(fs.Rename("/src/f", "/dst/g").ok());
  EXPECT_EQ(fs.Stat("/src/f").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(fs.Stat("/dst/g").ok());
  auto s = fs.StatDir("/src");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size, 0u);
  auto d = fs.StatDir("/dst");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size, 1u);
}

TEST_P(BaselineSuite, ConcurrentCreatesAllLand) {
  BaselineHarness fs(GetParam());
  ASSERT_TRUE(fs.Mkdir("/hot").ok());
  constexpr int kClients = 4;
  constexpr int kPerClient = 10;
  std::vector<std::unique_ptr<MetadataService>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(fs.cluster->NewClient(false));
  }
  int ok = 0;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn([](MetadataService* cl, int id, int n, int* ok) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        Status s = co_await cl->Create("/hot/c" + std::to_string(id) + "_" +
                                       std::to_string(i));
        if (s.ok()) {
          (*ok)++;
        }
      }
    }(clients[c].get(), c, kPerClient, &ok));
  }
  fs.cluster->sim().Run();
  EXPECT_EQ(ok, kClients * kPerClient);
  auto sd = fs.StatDir("/hot");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, static_cast<uint64_t>(kClients * kPerClient));
}

TEST_P(BaselineSuite, PreloadIsProtocolConsistent) {
  BaselineHarness fs(GetParam());
  fs.cluster->PreloadDir("/data");
  for (int i = 0; i < 20; ++i) {
    fs.cluster->PreloadFileAt("/data/img" + std::to_string(i));
  }
  auto warm = fs.cluster->NewClient(true);
  auto sd = fs.StatDir("/data");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 20u);
  EXPECT_TRUE(fs.Stat("/data/img5").ok());
  ASSERT_TRUE(fs.Unlink("/data/img5").ok());
  sd = fs.StatDir("/data");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 19u);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, BaselineSuite,
                         ::testing::Values(SystemKind::kEInfiniFS,
                                           SystemKind::kECfs,
                                           SystemKind::kCephFS,
                                           SystemKind::kIndexFS),
                         [](const auto& info) {
                           std::string n = SystemName(info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

// --- structural placement behaviours (Tab 1) ---

TEST(BaselinePlacementTest, GroupingColocatesSiblingsSeparationSpreadsThem) {
  core::HashRing ring({0, 1, 2, 3, 4, 5, 6, 7});
  core::InodeId dir;
  dir.w[0] = 42;
  BaselinePlacement grouping(SystemKind::kEInfiniFS, &ring);
  BaselinePlacement separation(SystemKind::kECfs, &ring);

  std::set<uint32_t> grouping_servers;
  std::set<uint32_t> separation_servers;
  for (int i = 0; i < 200; ++i) {
    const std::string name = "file" + std::to_string(i);
    grouping_servers.insert(grouping.FileServer(dir, name, "top"));
    separation_servers.insert(separation.FileServer(dir, name, "top"));
  }
  // P/C grouping: every sibling on the parent's server (the Fig 2a hotspot).
  EXPECT_EQ(grouping_servers.size(), 1u);
  // P/C separation: siblings spread across (nearly) all servers.
  EXPECT_GE(separation_servers.size(), 6u);
}

TEST(BaselinePlacementTest, CephSubtreePinsWholePathsToOneServer) {
  core::HashRing ring({0, 1, 2, 3});
  BaselinePlacement ceph(SystemKind::kCephFS, &ring);
  core::InodeId a;
  a.w[0] = 1;
  core::InodeId b;
  b.w[0] = 2;
  // Different directories, same top-level component -> same server.
  EXPECT_EQ(ceph.FileServer(a, "x", "project1"),
            ceph.FileServer(b, "y", "project1"));
  EXPECT_EQ(ceph.DirServer(a, "project1"), ceph.DirServer(b, "project1"));
}

TEST(BaselineLatencyTest, CephFsIsOrdersOfMagnitudeSlower) {
  // Fig 13: CephFS's per-op software stack dwarfs the emulated systems.
  BaselineHarness ceph(SystemKind::kCephFS);
  BaselineHarness infinifs(SystemKind::kEInfiniFS);
  ASSERT_TRUE(ceph.Mkdir("/a").ok());
  ASSERT_TRUE(infinifs.Mkdir("/a").ok());

  // Latency must be measured inside the coroutine: the harness drains the
  // whole event queue (including leftover RPC-timeout timers) per call.
  auto timed_create = [](BaselineHarness& fs, const std::string& path) {
    sim::SimTime latency = 0;
    fs.Run([](BaselineHarness* h, std::string p,
              sim::SimTime* out) -> sim::Task<void> {
      const sim::SimTime start = h->cluster->sim().Now();
      Status s = co_await h->client->Create(p);
      EXPECT_TRUE(s.ok());
      *out = h->cluster->sim().Now() - start;
    }(&fs, path, &latency));
    return latency;
  };
  const sim::SimTime ceph_lat = timed_create(ceph, "/a/f");
  const sim::SimTime ifs_lat = timed_create(infinifs, "/a/f");
  EXPECT_GT(ceph_lat, 20 * ifs_lat);
  EXPECT_GT(ceph_lat, sim::Microseconds(500));
  EXPECT_LT(ifs_lat, sim::Microseconds(60));
}

}  // namespace
}  // namespace switchfs::baselines
