// Tests for the common vocabulary types: Status/StatusOr, hashing, RNG and
// distributions, histograms, the binary codec, and path helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/strings.h"

namespace switchfs {
namespace {

TEST(Status, OkAndErrorBasics) {
  EXPECT_TRUE(OkStatus().ok());
  Status s = NotFoundError("no such file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such file");
}

TEST(StatusOr, HoldsValueOrStatus) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = NotFoundError();
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(Hash, StableAndSensitive) {
  const uint64_t h1 = HashString("hello");
  EXPECT_EQ(h1, HashString("hello"));
  EXPECT_NE(h1, HashString("hellp"));
  EXPECT_NE(h1, HashString("hello", /*seed=*/1));
  EXPECT_NE(HashString(""), HashString("x"));
}

TEST(Hash, AvalancheOnCounterKeys) {
  // Sequential keys must spread across buckets (placement relies on this).
  std::map<uint64_t, int> bucket_counts;
  constexpr int kBuckets = 16;
  for (uint64_t i = 0; i < 16000; ++i) {
    std::string key = "file_" + std::to_string(i);
    bucket_counts[HashString(key) % kBuckets]++;
  }
  for (const auto& [b, c] : bucket_counts) {
    EXPECT_GT(c, 700) << "bucket " << b;
    EXPECT_LT(c, 1300) << "bucket " << b;
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(124);
  EXPECT_NE(Rng(123).Next(), c.Next());
}

TEST(Rng, NextBelowInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Zipf, HighThetaIsSkewed) {
  Rng rng(42);
  ZipfGenerator zipf(1000, 0.99);
  std::map<uint64_t, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Head items dominate: rank 0 should take a noticeable share, and the top
  // 20 percent of ranks should take well over half the mass.
  EXPECT_GT(counts[0], kSamples / 20);
  int head = 0;
  for (uint64_t r = 0; r < 200; ++r) {
    head += counts[r];
  }
  EXPECT_GT(head, kSamples * 6 / 10);
}

TEST(Zipf, ThetaZeroIsUniform) {
  Rng rng(42);
  ZipfGenerator zipf(10, 0.0);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) {
    counts[zipf.Next(rng)]++;
  }
  for (const auto& [v, c] : counts) {
    EXPECT_GT(c, 4000) << v;
    EXPECT_LT(c, 6000) << v;
  }
}

TEST(DiscreteSampler, RespectsWeights) {
  Rng rng(9);
  DiscreteSampler sampler({0.5, 0.3, 0.2});
  std::vector<int> counts(3, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    counts[sampler.Next(rng)]++;
  }
  EXPECT_NEAR(counts[0] / double(kSamples), 0.5, 0.02);
  EXPECT_NEAR(counts[1] / double(kSamples), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / double(kSamples), 0.2, 0.02);
}

TEST(Histogram, ExactForSmallValues) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) {
    h.Record(i);
  }
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10);
  EXPECT_DOUBLE_EQ(h.Mean(), 5.5);
  EXPECT_EQ(h.Percentile(0.0), 1);
  EXPECT_EQ(h.Percentile(1.0), 10);
}

TEST(Histogram, BoundedRelativeErrorForLargeValues) {
  Histogram h;
  h.Record(1'000'000);
  const int64_t p = h.Percentile(0.5);
  EXPECT_NEAR(static_cast<double>(p), 1e6, 1e6 / 16.0);
}

TEST(Histogram, PercentileMonotonic) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBelow(1'000'000)));
  }
  int64_t prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    int64_t v = h.Percentile(q);
    EXPECT_GE(v, prev) << q;
    prev = v;
  }
}

TEST(Histogram, MergeCombines) {
  Histogram a;
  Histogram b;
  a.Record(10);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 30);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
}

TEST(Bytes, RoundTripsAllTypes) {
  Encoder enc;
  enc.PutU8(7);
  enc.PutU16(1234);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  enc.PutI64(-42);
  enc.PutString("hello world");
  enc.PutBool(true);
  enc.PutString("");

  Decoder dec(enc.data());
  EXPECT_EQ(dec.GetU8(), 7);
  EXPECT_EQ(dec.GetU16(), 1234);
  EXPECT_EQ(dec.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(dec.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.GetI64(), -42);
  EXPECT_EQ(dec.GetString(), "hello world");
  EXPECT_TRUE(dec.GetBool());
  EXPECT_EQ(dec.GetString(), "");
  EXPECT_TRUE(dec.ok());
  EXPECT_EQ(dec.remaining(), 0u);
}

TEST(Bytes, DecodeFailureIsSticky) {
  Encoder enc;
  enc.PutU32(100);  // claims a 100-byte string follows
  Decoder dec(enc.data());
  EXPECT_EQ(dec.GetString(), "");
  EXPECT_FALSE(dec.ok());
  EXPECT_EQ(dec.GetU64(), 0u);
  EXPECT_FALSE(dec.ok());
}

TEST(Strings, SplitPath) {
  EXPECT_TRUE(SplitPath("/").empty());
  auto parts = SplitPath("/a/bb/ccc");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "bb");
  EXPECT_EQ(parts[2], "ccc");
}

TEST(Strings, IsValidPath) {
  EXPECT_TRUE(IsValidPath("/"));
  EXPECT_TRUE(IsValidPath("/a"));
  EXPECT_TRUE(IsValidPath("/a/b/c"));
  EXPECT_FALSE(IsValidPath(""));
  EXPECT_FALSE(IsValidPath("a/b"));
  EXPECT_FALSE(IsValidPath("/a/"));
  EXPECT_FALSE(IsValidPath("/a//b"));
}

TEST(Strings, ParentAndBasename) {
  EXPECT_EQ(ParentPath("/a/b/c"), "/a/b");
  EXPECT_EQ(ParentPath("/a"), "/");
  EXPECT_EQ(Basename("/a/b/c"), "c");
  EXPECT_EQ(Basename("/a"), "a");
}

TEST(Strings, JoinPath) {
  EXPECT_EQ(JoinPath("/", "a"), "/a");
  EXPECT_EQ(JoinPath("/a", "b"), "/a/b");
}

}  // namespace
}  // namespace switchfs
