// Unit tests for core building blocks that the protocol suites exercise only
// indirectly: the reference-counted lock table, the client cache, the
// timestamped invalidation list, change-log compaction state, schema keys,
// and consistent-hash placement.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/change_log.h"
#include "src/core/client_cache.h"
#include "src/core/invalidation.h"
#include "src/core/lock_table.h"
#include "src/core/placement.h"
#include "src/core/schema.h"
#include "src/sim/simulator.h"

namespace switchfs::core {
namespace {

TEST(LockTable, SlotsAreReclaimedWhenIdle) {
  sim::Simulator sim;
  LockTable table(&sim);
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    sim::Spawn([](sim::Simulator* s, LockTable* t, int* d) -> sim::Task<void> {
      auto h = co_await t->AcquireExclusive("key");
      co_await sim::Delay(s, 5);
      (*d)++;
    }(&sim, &table, &done));
  }
  EXPECT_GE(table.slot_count(), 1u);
  sim.Run();
  EXPECT_EQ(done, 8);
  EXPECT_EQ(table.slot_count(), 0u);  // last release reclaims the slot
}

TEST(LockTable, MixedSharedExclusiveFifo) {
  sim::Simulator sim;
  LockTable table(&sim);
  std::string order;
  auto reader = [](sim::Simulator* s, LockTable* t, std::string* o,
                   char tag) -> sim::Task<void> {
    auto h = co_await t->AcquireShared("k");
    o->push_back(tag);
    co_await sim::Delay(s, 10);
  };
  auto writer = [](sim::Simulator* s, LockTable* t, std::string* o,
                   char tag) -> sim::Task<void> {
    auto h = co_await t->AcquireExclusive("k");
    o->push_back(tag);
    co_await sim::Delay(s, 10);
  };
  sim.ScheduleAt(0, [&] { sim::Spawn(reader(&sim, &table, &order, 'a')); });
  sim.ScheduleAt(1, [&] { sim::Spawn(writer(&sim, &table, &order, 'W')); });
  sim.ScheduleAt(2, [&] { sim::Spawn(reader(&sim, &table, &order, 'b')); });
  sim.Run();
  EXPECT_EQ(order, "aWb");
  EXPECT_EQ(table.slot_count(), 0u);
}

TEST(LockTable, IndependentKeysDoNotInterfere) {
  sim::Simulator sim;
  LockTable table(&sim);
  sim::SimTime done_a = 0;
  sim::SimTime done_b = 0;
  sim::Spawn([](sim::Simulator* s, LockTable* t, sim::SimTime* out)
                 -> sim::Task<void> {
    auto h = co_await t->AcquireExclusive("a");
    co_await sim::Delay(s, 100);
    *out = s->Now();
  }(&sim, &table, &done_a));
  sim::Spawn([](sim::Simulator* s, LockTable* t, sim::SimTime* out)
                 -> sim::Task<void> {
    auto h = co_await t->AcquireExclusive("b");
    co_await sim::Delay(s, 100);
    *out = s->Now();
  }(&sim, &table, &done_b));
  sim.Run();
  EXPECT_EQ(done_a, 100);
  EXPECT_EQ(done_b, 100);  // parallel, not serialized
}

TEST(ClientCache, InvalidateIdDropsDependentEntries) {
  ClientCache cache;
  InodeId a;
  a.w[0] = 1;
  InodeId b;
  b.w[0] = 2;
  InodeId c;
  c.w[0] = 3;
  CachedDir da{a, 0, 0755, {{RootId(), 0}, {a, 10}}};
  CachedDir db{b, 0, 0755, {{RootId(), 0}, {a, 10}, {b, 11}}};
  CachedDir dc{c, 0, 0755, {{RootId(), 0}, {c, 12}}};
  cache.Put("/a", da);
  cache.Put("/a/b", db);
  cache.Put("/c", dc);
  EXPECT_EQ(cache.InvalidateId(a), 2u);  // /a and /a/b
  EXPECT_EQ(cache.Get("/a"), nullptr);
  EXPECT_EQ(cache.Get("/a/b"), nullptr);
  EXPECT_NE(cache.Get("/c"), nullptr);
}

TEST(Invalidation, TimestampOrderingGovernsStaleness) {
  InvalidationList list;
  InodeId id;
  id.w[0] = 7;
  list.Add(id, /*now=*/100);
  // Cached before the invalidation: stale.
  std::vector<AncestorRef> old_chain = {{id, 50}};
  EXPECT_EQ(list.Check(old_chain).size(), 1u);
  // Cached at the same instant: conservatively stale.
  std::vector<AncestorRef> same_chain = {{id, 100}};
  EXPECT_EQ(list.Check(same_chain).size(), 1u);
  // Re-fetched after: fresh (a failed rmdir cannot poison the cache forever).
  std::vector<AncestorRef> new_chain = {{id, 101}};
  EXPECT_TRUE(list.Check(new_chain).empty());
}

TEST(Invalidation, SnapshotMergeKeepsNewestTimestamps) {
  InvalidationList a;
  InvalidationList b;
  InodeId id;
  id.w[0] = 9;
  a.Add(id, 100);
  b.Add(id, 50);
  b.Merge(a.Snapshot());
  std::vector<AncestorRef> chain = {{id, 75}};
  EXPECT_EQ(b.Check(chain).size(), 1u);  // newest (100) wins
}

TEST(Invalidation, PruneDropsOldEntries) {
  InvalidationList list;
  InodeId id1;
  id1.w[0] = 1;
  InodeId id2;
  id2.w[0] = 2;
  list.Add(id1, 10);
  list.Add(id2, 200);
  list.PruneBefore(100);
  EXPECT_FALSE(list.Contains(id1));
  EXPECT_TRUE(list.Contains(id2));
}

TEST(ChangeLog, AppendAssignsFifoSeqAndTracksCompactedState) {
  ChangeLog log(InodeId{}, 42);
  ChangeLogEntry e1;
  e1.timestamp = 10;
  e1.name = "a";
  e1.size_delta = 1;
  ChangeLogEntry e2;
  e2.timestamp = 30;
  e2.name = "b";
  e2.size_delta = 1;
  ChangeLogEntry e3;
  e3.timestamp = 20;
  e3.name = "a";
  e3.size_delta = -1;
  EXPECT_EQ(log.Append(e1), 1u);
  EXPECT_EQ(log.Append(e2), 2u);
  EXPECT_EQ(log.Append(e3), 3u);
  // Compaction state (Fig 7): max timestamp + net size delta.
  EXPECT_EQ(log.max_timestamp(), 30);
  EXPECT_EQ(log.pending_size_delta(), 1);
  EXPECT_EQ(log.size(), 3u);
}

TEST(ChangeLog, AckUpToDropsPrefixAndReturnsWalLsns) {
  ChangeLog log(InodeId{}, 1);
  for (int i = 0; i < 5; ++i) {
    ChangeLogEntry e;
    e.name = "f" + std::to_string(i);
    e.wal_lsn = 100 + i;
    log.Append(e);
  }
  auto lsns = log.AckUpTo(3);
  EXPECT_EQ(lsns, (std::vector<uint64_t>{100, 101, 102}));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.pending().front().seq, 4u);
  // Re-acking is a no-op.
  EXPECT_TRUE(log.AckUpTo(3).empty());
}

TEST(ChangeLog, RestorePreservesSeqAcrossRecovery) {
  ChangeLog log(InodeId{}, 1);
  ChangeLogEntry e;
  e.seq = 7;
  e.name = "x";
  log.Restore(e);
  EXPECT_EQ(log.last_appended_seq(), 7u);
  ChangeLogEntry next;
  next.name = "y";
  EXPECT_EQ(log.Append(next), 8u);
}

TEST(ChangeLogEntry, EncodeDecodeRoundTrip) {
  ChangeLogEntry e;
  e.seq = 42;
  e.timestamp = 123456789;
  e.op = OpType::kRmdir;
  e.name = "subdir";
  e.entry_type = FileType::kDirectory;
  e.size_delta = -1;
  Encoder enc;
  e.EncodeTo(enc);
  Decoder dec(enc.data());
  ChangeLogEntry d = ChangeLogEntry::DecodeFrom(dec);
  EXPECT_EQ(d.seq, 42u);
  EXPECT_EQ(d.timestamp, 123456789);
  EXPECT_EQ(d.op, OpType::kRmdir);
  EXPECT_EQ(d.name, "subdir");
  EXPECT_EQ(d.entry_type, FileType::kDirectory);
  EXPECT_EQ(d.size_delta, -1);
}

TEST(Schema, KeysRoundTripAndPartitionDeterministically) {
  InodeId pid;
  pid.w[0] = 0xdead;
  const std::string ikey = InodeKey(pid, "file.txt");
  EXPECT_EQ(ikey.size(), 1 + 32 + 8u);
  EXPECT_EQ(ikey[0], 'i');
  const std::string ekey = EntryKey(pid, "file.txt");
  EXPECT_EQ(EntryNameFromKey(ekey), "file.txt");
  EXPECT_EQ(NameHash(pid, "file.txt"), NameHash(pid, "file.txt"));
  EXPECT_NE(NameHash(pid, "file.txt"), NameHash(pid, "file2.txt"));
  EXPECT_NE(FingerprintOf(pid, "a"), FingerprintOf(pid, "b"));
}

TEST(Placement, RingIsBalancedAndStableUnderGrowth) {
  HashRing ring({0, 1, 2, 3, 4, 5, 6, 7});
  switchfs::Rng rng(3);
  std::vector<int> counts(8, 0);
  std::vector<psw::Fingerprint> fps;
  for (int i = 0; i < 80000; ++i) {
    fps.push_back(psw::FingerprintFromHash(rng.Next()));
    counts[ring.Owner(fps.back())]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 5000);
    EXPECT_LT(c, 16000);
  }
  // Adding a server moves only ~1/9 of the keys (consistent hashing, §5.5).
  HashRing bigger = ring;
  bigger.AddServer(8);
  int moved = 0;
  for (psw::Fingerprint fp : fps) {
    if (ring.Owner(fp) != bigger.Owner(fp)) {
      moved++;
    }
  }
  EXPECT_LT(moved, 80000 / 5);
  EXPECT_GT(moved, 80000 / 30);
}

TEST(Attr, EncodeDecodeRoundTripIncludingReferences) {
  Attr a;
  a.id.w[0] = 5;
  a.type = FileType::kReference;
  a.mode = 0640;
  a.size = 3;  // attr-server index for references
  a.nlink = 4;
  Attr b = Attr::Decode(a.Encode());
  EXPECT_EQ(b.id, a.id);
  EXPECT_EQ(b.type, FileType::kReference);
  EXPECT_EQ(b.mode, 0640u);
  EXPECT_EQ(b.size, 3u);
  EXPECT_EQ(b.nlink, 4u);
}

}  // namespace
}  // namespace switchfs::core
