// Dynamic lock-discipline checker (src/sim/discipline.h): proves the checker
// fires on a non-innermost append-mutex acquisition and on a switch-cache
// evict run without the exclusive inode lock, and stays silent on the
// disciplined orders. The checks are compiled out under NDEBUG
// (RelWithDebInfo/Release); these tests then skip — the Asan and Debug legs
// of scripts/check.sh run them for real.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/cache_evict.h"
#include "src/core/keys.h"
#include "src/core/lock_table.h"
#include "src/core/server_context.h"
#include "src/net/network.h"
#include "src/net/rpc.h"
#include "src/sim/costs.h"
#include "src/sim/discipline.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace switchfs {
namespace {

using core::ClAppendKey;
using core::InodeKey;
using core::LockTable;

core::InodeId Dir(uint64_t n) {
  core::InodeId id;
  id.w[0] = n;
  return id;
}

class DisciplineTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !SFS_DISCIPLINE_CHECKS
    GTEST_SKIP() << "discipline checks compiled out (NDEBUG)";
#endif
    sim::DisciplineChecker::Reset();
    sim::DisciplineChecker::SetHandler(
        [this](const sim::DisciplineChecker::Violation& v) {
          violations_.push_back(v);
        });
  }
  void TearDown() override {
    sim::DisciplineChecker::SetHandler(nullptr);
    sim::DisciplineChecker::Reset();
  }

  std::vector<sim::DisciplineChecker::Violation> violations_;
};

TEST_F(DisciplineTest, AppendMutexAcquiredNonInnermostFires) {
  sim::Simulator sim;
  LockTable inode_locks(&sim, sim::LockClass::kInode);
  LockTable append_locks(&sim, sim::LockClass::kAppend);
  bool done = false;
  sim::Spawn([](LockTable* inode, LockTable* append,
                bool* flag) -> sim::Task<void> {
    // Violating order: another class acquired while the append mutex is held.
    auto append_lock = co_await append->AcquireExclusive(ClAppendKey(7, Dir(1)));
    auto ino_lock = co_await inode->AcquireExclusive(InodeKey(Dir(1), "f"));
    *flag = true;
  }(&inode_locks, &append_locks, &done));
  sim.Run();
  ASSERT_TRUE(done);
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].rule, "append-innermost");
}

TEST_F(DisciplineTest, InnermostAppendOrderIsSilent) {
  sim::Simulator sim;
  LockTable inode_locks(&sim, sim::LockClass::kInode);
  LockTable append_locks(&sim, sim::LockClass::kAppend);
  bool done = false;
  sim::Spawn([](LockTable* inode, LockTable* append,
                bool* flag) -> sim::Task<void> {
    auto ino_lock = co_await inode->AcquireExclusive(InodeKey(Dir(1), "f"));
    auto append_lock = co_await append->AcquireExclusive(ClAppendKey(7, Dir(1)));
    *flag = true;
  }(&inode_locks, &append_locks, &done));
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(DisciplineTest, SecondAppendMutexIsAllowed) {
  // The moved_fp rebind takes the (old, new) append pair in key order
  // (PushEngine::RebindMovedLog); same-class acquisition is not a violation.
  sim::Simulator sim;
  LockTable append_locks(&sim, sim::LockClass::kAppend);
  bool done = false;
  sim::Spawn([](LockTable* append, bool* flag) -> sim::Task<void> {
    auto first = co_await append->AcquireExclusive(ClAppendKey(7, Dir(1)));
    auto second = co_await append->AcquireExclusive(ClAppendKey(9, Dir(1)));
    *flag = true;
  }(&append_locks, &done));
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(DisciplineTest, HoldsFollowTheAwaitChainAcrossSubcoroutines) {
  // A lock acquired by a child coroutine counts for the parent's chain, and
  // an interleaved chain does not inherit it: the second spawned root takes
  // the append mutex with no inode lock of its OWN and still reports no
  // cross-talk from the first chain's live inode hold.
  sim::Simulator sim;
  LockTable inode_locks(&sim, sim::LockClass::kInode);
  LockTable append_locks(&sim, sim::LockClass::kAppend);
  int done = 0;
  auto child_acquire = [](LockTable* t, std::string key) -> sim::Task<LockTable::Handle> {
    co_return co_await t->AcquireExclusive(std::move(key));
  };
  sim::Spawn([](decltype(child_acquire)* child, LockTable* inode,
                LockTable* append, sim::Simulator* s,
                int* flag) -> sim::Task<void> {
    auto ino_lock = co_await (*child)(inode, InodeKey(Dir(1), "a"));
    co_await sim::Delay(s, 100);  // hold across the other chain's run
    auto append_lock = co_await append->AcquireExclusive(ClAppendKey(7, Dir(1)));
    ++*flag;
  }(&child_acquire, &inode_locks, &append_locks, &sim, &done));
  sim::Spawn([](LockTable* append, int* flag) -> sim::Task<void> {
    auto append_lock = co_await append->AcquireExclusive(ClAppendKey(9, Dir(2)));
    ++*flag;
  }(&append_locks, &done));
  sim.Run();
  ASSERT_EQ(done, 2);
  EXPECT_TRUE(violations_.empty());
  EXPECT_EQ(sim::DisciplineChecker::live_holds(), 0u);
}

// Drives the real EvictSwitchCacheEntry against a minimal server context:
// switch_cache on and the fingerprint marked installed, so the evict gate is
// passed and the lock check runs. No switch exists on the network, so the
// round trip exhausts its 1-attempt budget and returns.
class EvictFixture {
 public:
  EvictFixture() : net_(&sim_, &costs_, /*seed=*/1), rpc_(&sim_, &net_) {
    net_.SetSwitch(&plain_switch_);
    config_.switch_cache = true;
    config_.cache_evict_max_attempts = 1;
    config_.cache_evict_timeout = sim::Microseconds(10);
    ctx_.sim = &sim_;
    ctx_.net = &net_;
    ctx_.config = &config_;
    ctx_.costs = &costs_;
    ctx_.stats = &stats_;
    ctx_.rpc = &rpc_;
    vol_ = std::make_shared<core::ServerVolatile>(&sim_);
    vol_->cached_fps.insert(kFp);
  }

  static constexpr psw::Fingerprint kFp = 42;
  sim::Simulator sim_;
  sim::CostModel costs_;
  net::PlainSwitch plain_switch_{sim::Nanoseconds(100)};
  net::Network net_;
  net::RpcEndpoint rpc_;
  core::ServerConfig config_;
  core::ServerStats stats_;
  core::ServerContext ctx_;
  core::VolPtr vol_;
};

TEST_F(DisciplineTest, UnlockedEvictFires) {
  EvictFixture fx;
  bool done = false;
  sim::Spawn([](EvictFixture* fx, bool* flag) -> sim::Task<void> {
    // No inode lock held by this chain: the checker must fire.
    co_await core::EvictSwitchCacheEntry(fx->ctx_, fx->vol_, EvictFixture::kFp);
    *flag = true;
  }(&fx, &done));
  fx.sim_.Run();
  ASSERT_TRUE(done);
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].rule, "evict-requires-lock");
}

TEST_F(DisciplineTest, EvictUnderExclusiveInodeLockIsSilent) {
  EvictFixture fx;
  bool done = false;
  sim::Spawn([](EvictFixture* fx, bool* flag) -> sim::Task<void> {
    auto lock =
        co_await fx->vol_->ShardForKey(InodeKey(Dir(1), "f"))
            .inode_locks.AcquireExclusive(InodeKey(Dir(1), "f"));
    co_await core::EvictSwitchCacheEntry(fx->ctx_, fx->vol_, EvictFixture::kFp);
    *flag = true;
  }(&fx, &done));
  fx.sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(DisciplineTest, ExternalWitnessSkipsTheChainCheck) {
  // Rename 2PC commit leg: the lock lives in v->txn_locks, held by the
  // prepare leg's chain — kExternal must not fire on the commit chain.
  EvictFixture fx;
  bool done = false;
  sim::Spawn([](EvictFixture* fx, bool* flag) -> sim::Task<void> {
    co_await core::EvictSwitchCacheEntry(fx->ctx_, fx->vol_, EvictFixture::kFp,
                                         core::EvictLockWitness::kExternal);
    *flag = true;
  }(&fx, &done));
  fx.sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(violations_.empty());
}

TEST_F(DisciplineTest, SharedInodeLockDoesNotSatisfyTheEvict) {
  EvictFixture fx;
  bool done = false;
  sim::Spawn([](EvictFixture* fx, bool* flag) -> sim::Task<void> {
    auto lock = co_await fx->vol_->ShardForKey(InodeKey(Dir(1), "f"))
                    .inode_locks.AcquireShared(InodeKey(Dir(1), "f"));
    co_await core::EvictSwitchCacheEntry(fx->ctx_, fx->vol_, EvictFixture::kFp);
    *flag = true;
  }(&fx, &done));
  fx.sim_.Run();
  ASSERT_TRUE(done);
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].rule, "evict-requires-lock");
}

}  // namespace
}  // namespace switchfs
