// Tests for the storage substrate: KV store semantics (get/put/delete,
// ordered prefix scans) and WAL append/apply-marker/truncate behaviour.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/kv/kvstore.h"
#include "src/kv/wal.h"

namespace switchfs::kv {
namespace {

TEST(KvStore, GetPutDelete) {
  KvStore store;
  EXPECT_FALSE(store.Get("a").has_value());
  store.Put("a", "1");
  EXPECT_EQ(store.Get("a"), "1");
  store.Put("a", "2");  // overwrite
  EXPECT_EQ(store.Get("a"), "2");
  EXPECT_TRUE(store.Delete("a"));
  EXPECT_FALSE(store.Delete("a"));
  EXPECT_FALSE(store.Contains("a"));
}

TEST(KvStore, PrefixScanIsOrderedAndBounded) {
  KvStore store;
  store.Put("dir1/a", "1");
  store.Put("dir1/c", "3");
  store.Put("dir1/b", "2");
  store.Put("dir2/a", "x");
  store.Put("dir0/z", "y");
  std::vector<std::string> keys;
  store.ScanPrefix("dir1/", [&](const std::string& k, const std::string&) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"dir1/a", "dir1/b", "dir1/c"}));
  EXPECT_EQ(store.CountPrefix("dir1/"), 3u);
  EXPECT_EQ(store.CountPrefix("dir9/"), 0u);
}

TEST(KvStore, ScanEarlyStop) {
  KvStore store;
  for (int i = 0; i < 10; ++i) {
    store.Put("k" + std::to_string(i), "v");
  }
  int visited = 0;
  store.ScanPrefix("k", [&](const std::string&, const std::string&) {
    return ++visited < 3;
  });
  EXPECT_EQ(visited, 3);
}

TEST(KvStore, ClearWipes) {
  KvStore store;
  store.Put("a", "1");
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
}

TEST(Wal, AppendAssignsMonotonicLsns) {
  Wal wal;
  EXPECT_EQ(wal.Append(1, "a"), 1u);
  EXPECT_EQ(wal.Append(2, "b"), 2u);
  EXPECT_EQ(wal.Append(1, "c"), 3u);
  EXPECT_EQ(wal.record_count(), 3u);
  EXPECT_EQ(wal.records()[1].payload, "b");
  EXPECT_EQ(wal.records()[1].type, 2u);
}

TEST(Wal, MarkAppliedTracksUnapplied) {
  Wal wal;
  const uint64_t l1 = wal.Append(1, "a");
  const uint64_t l2 = wal.Append(1, "b");
  wal.Append(1, "c");
  EXPECT_EQ(wal.unapplied_count(), 3u);
  wal.MarkApplied(l1);
  wal.MarkApplied(l2);
  EXPECT_EQ(wal.unapplied_count(), 1u);
  EXPECT_TRUE(wal.records()[0].applied);
  EXPECT_FALSE(wal.records()[2].applied);
}

TEST(Wal, TruncatePreservesLsnAddressing) {
  Wal wal;
  for (int i = 0; i < 5; ++i) {
    wal.Append(1, std::to_string(i));
  }
  wal.TruncateUpTo(2);
  EXPECT_EQ(wal.record_count(), 3u);
  EXPECT_EQ(wal.records().front().lsn, 3u);
  // Marking a surviving record still works; truncated lsns are no-ops.
  wal.MarkApplied(4);
  EXPECT_TRUE(wal.records()[1].applied);
  wal.MarkApplied(1);  // no crash
  EXPECT_EQ(wal.unapplied_count(), 2u);
}

}  // namespace
}  // namespace switchfs::kv
