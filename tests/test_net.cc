// Tests for the simulated network fabric and the RPC layer: delivery
// latency, multicast expansion, fault injection, retransmission, duplicate
// suppression, and out-of-band response caching.
#include <gtest/gtest.h>

#include <vector>

#include "src/net/network.h"
#include "src/net/packet.h"
#include "src/net/rpc.h"
#include "src/sim/costs.h"
#include "src/sim/simulator.h"

namespace switchfs::net {
namespace {

struct PingMsg : Message {
  static constexpr uint32_t kType = 9001;
  explicit PingMsg(int v) : Message(kType), value(v) {}
  int value;
};

struct PongMsg : Message {
  static constexpr uint32_t kType = 9002;
  explicit PongMsg(int v) : Message(kType), value(v) {}
  int value;
};

class Harness {
 public:
  Harness() : costs_(), net_(&sim_, &costs_, /*seed=*/42), sw_(costs_.plain_switch_delay) {
    costs_.link_jitter = 0;  // deterministic latency for timing assertions
    net_.SetSwitch(&sw_);
  }

  sim::Simulator sim_;
  sim::CostModel costs_;
  Network net_;
  PlainSwitch sw_;
};

class Sink : public Node {
 public:
  void HandlePacket(Packet p) override { received.push_back(std::move(p)); }
  std::vector<Packet> received;
};

TEST(Network, DeliversThroughSwitchWithExpectedLatency) {
  Harness h;
  Sink a;
  Sink b;
  NodeId ida = h.net_.Register(&a);
  NodeId idb = h.net_.Register(&b);
  (void)ida;

  Packet p;
  p.src = ida;
  p.dst = idb;
  h.net_.Send(p);
  h.sim_.Run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(a.received.empty());
  // link + switch + link
  EXPECT_EQ(h.sim_.Now(),
            2 * h.costs_.link_latency + h.costs_.plain_switch_delay);
}

TEST(Network, ServerMulticastExpandsToGroupExceptOrigin) {
  Harness h;
  Sink s0;
  Sink s1;
  Sink s2;
  NodeId i0 = h.net_.Register(&s0);
  NodeId i1 = h.net_.Register(&s1);
  NodeId i2 = h.net_.Register(&s2);
  h.sw_.SetServerGroup({i0, i1, i2});

  Packet p;
  p.src = i0;
  p.dst = kServerMulticast;
  p.ds.op = DsOp::kRemove;
  p.ds.origin = i0;
  h.net_.Send(p);
  h.sim_.Run();
  EXPECT_TRUE(s0.received.empty());
  EXPECT_EQ(s1.received.size(), 1u);
  EXPECT_EQ(s2.received.size(), 1u);
}

TEST(Network, LossDropsPackets) {
  Harness h;
  Sink a;
  Sink b;
  NodeId ida = h.net_.Register(&a);
  NodeId idb = h.net_.Register(&b);
  h.net_.SetFaults({.loss_probability = 0.5});
  for (int i = 0; i < 1000; ++i) {
    Packet p;
    p.src = ida;
    p.dst = idb;
    h.net_.Send(p);
  }
  h.sim_.Run();
  // Two hops at 50% each => ~25% delivery.
  EXPECT_GT(b.received.size(), 150u);
  EXPECT_LT(b.received.size(), 400u);
  EXPECT_GT(h.net_.stats().packets_dropped, 0u);
}

TEST(Network, DuplicationDeliversExtraCopies) {
  Harness h;
  Sink a;
  Sink b;
  NodeId ida = h.net_.Register(&a);
  NodeId idb = h.net_.Register(&b);
  h.net_.SetFaults({.duplicate_probability = 0.5});
  for (int i = 0; i < 500; ++i) {
    Packet p;
    p.src = ida;
    p.dst = idb;
    h.net_.Send(p);
  }
  h.sim_.Run();
  EXPECT_GT(b.received.size(), 600u);  // ~500 * (1.5)^2 hops-ish
  EXPECT_GT(h.net_.stats().packets_duplicated, 0u);
}

TEST(Network, SwitchDownDropsEverything) {
  Harness h;
  Sink a;
  Sink b;
  NodeId ida = h.net_.Register(&a);
  NodeId idb = h.net_.Register(&b);
  h.net_.SetSwitchDown(true);
  Packet p;
  p.src = ida;
  p.dst = idb;
  h.net_.Send(p);
  h.sim_.Run();
  EXPECT_TRUE(b.received.empty());
}

TEST(Network, RebindSwapsNodeInPlace) {
  Harness h;
  Sink a;
  Sink b1;
  Sink b2;
  NodeId ida = h.net_.Register(&a);
  NodeId idb = h.net_.Register(&b1);
  h.net_.Rebind(idb, &b2);
  Packet p;
  p.src = ida;
  p.dst = idb;
  h.net_.Send(p);
  h.sim_.Run();
  EXPECT_TRUE(b1.received.empty());
  EXPECT_EQ(b2.received.size(), 1u);
}

// --- RPC tests ---

class RpcHarness : public Harness {
 public:
  RpcHarness() : client_(&sim_, &net_), server_(&sim_, &net_) {
    server_.SetRequestHandler([this](Packet p) {
      requests_seen_++;
      auto* ping = MsgAs<PingMsg>(p.body);
      ASSERT_NE(ping, nullptr);
      server_.Respond(p, MakeMsg<PongMsg>(ping->value * 2));
    });
  }

  RpcEndpoint client_;
  RpcEndpoint server_;
  int requests_seen_ = 0;
};

TEST(Rpc, BasicCallResponse) {
  RpcHarness h;
  StatusOr<MsgPtr> result = NotFoundError();
  sim::Spawn([](RpcHarness* h, StatusOr<MsgPtr>* out) -> sim::Task<void> {
    *out = co_await h->client_.Call(h->server_.id(), MakeMsg<PingMsg>(21));
  }(&h, &result));
  h.sim_.Run();
  ASSERT_TRUE(result.ok());
  const auto* pong = MsgAs<PongMsg>(*result);
  ASSERT_NE(pong, nullptr);
  EXPECT_EQ(pong->value, 42);
}

TEST(Rpc, RetransmitsUntilResponseUnderLoss) {
  RpcHarness h;
  h.net_.SetFaults({.loss_probability = 0.4});
  int ok_count = 0;
  constexpr int kCalls = 50;
  for (int i = 0; i < kCalls; ++i) {
    sim::Spawn([](RpcHarness* h, int* ok) -> sim::Task<void> {
      CallOptions opts;
      opts.timeout = sim::Microseconds(20);
      opts.max_attempts = 30;
      auto r = co_await h->client_.Call(h->server_.id(), MakeMsg<PingMsg>(1), opts);
      if (r.ok()) {
        (*ok)++;
      }
    }(&h, &ok_count));
  }
  h.sim_.Run();
  EXPECT_EQ(ok_count, kCalls);
  EXPECT_GT(h.client_.retransmits_sent(), 0u);
}

TEST(Rpc, DuplicateRequestsAreSuppressed) {
  RpcHarness h;
  h.net_.SetFaults({.duplicate_probability = 0.6});
  int ok_count = 0;
  constexpr int kCalls = 40;
  for (int i = 0; i < kCalls; ++i) {
    sim::Spawn([](RpcHarness* h, int* ok) -> sim::Task<void> {
      auto r = co_await h->client_.Call(h->server_.id(), MakeMsg<PingMsg>(1));
      if (r.ok()) {
        (*ok)++;
      }
    }(&h, &ok_count));
  }
  h.sim_.Run();
  EXPECT_EQ(ok_count, kCalls);
  // The handler must have run exactly once per logical call even though the
  // network injected duplicates.
  EXPECT_EQ(h.requests_seen_, kCalls);
  EXPECT_GT(h.server_.duplicate_requests_seen(), 0u);
}

TEST(Rpc, CallTimesOutAgainstDeadServer) {
  RpcHarness h;
  h.server_.SetEnabled(false);
  Status status = OkStatus();
  sim::Spawn([](RpcHarness* h, Status* out) -> sim::Task<void> {
    CallOptions opts;
    opts.timeout = sim::Microseconds(10);
    opts.max_attempts = 3;
    auto r = co_await h->client_.Call(h->server_.id(), MakeMsg<PingMsg>(1), opts);
    *out = r.status();
  }(&h, &status));
  h.sim_.Run();
  EXPECT_EQ(status.code(), StatusCode::kTimeout);
}

TEST(Rpc, OutOfBandResponseSatisfiesRetransmittedRequest) {
  // Models SwitchFS's create flow: the server records the response without
  // sending it (first copy rides the switch multicast, which we drop here);
  // the client's retransmit is then answered from the dedup cache.
  Harness h;
  RpcEndpoint client(&h.sim_, &h.net_);
  RpcEndpoint server(&h.sim_, &h.net_);
  int handler_runs = 0;
  server.SetRequestHandler([&](Packet p) {
    handler_runs++;
    server.RecordResponse(p, MakeMsg<PongMsg>(7));  // no packet sent
  });
  StatusOr<MsgPtr> result = NotFoundError();
  sim::Spawn([](RpcEndpoint* c, RpcEndpoint* s,
                StatusOr<MsgPtr>* out) -> sim::Task<void> {
    CallOptions opts;
    opts.timeout = sim::Microseconds(15);
    opts.max_attempts = 5;
    *out = co_await c->Call(s->id(), MakeMsg<PingMsg>(1), opts);
  }(&client, &server, &result));
  h.sim_.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(MsgAs<PongMsg>(*result)->value, 7);
  EXPECT_EQ(handler_runs, 1);
}

TEST(Rpc, NotifyReachesRawHandler) {
  Harness h;
  RpcEndpoint a(&h.sim_, &h.net_);
  RpcEndpoint b(&h.sim_, &h.net_);
  int raw_count = 0;
  b.SetRawHandler([&](Packet p) {
    EXPECT_NE(MsgAs<PingMsg>(p.body), nullptr);
    raw_count++;
  });
  a.Notify(b.id(), MakeMsg<PingMsg>(5));
  h.sim_.Run();
  EXPECT_EQ(raw_count, 1);
}

TEST(Rpc, CpuChargingSerializesPacketProcessing) {
  Harness h;
  sim::CpuPool cpu(&h.sim_, 1);
  RpcEndpoint client(&h.sim_, &h.net_);
  RpcEndpoint server(&h.sim_, &h.net_);
  server.SetCpu(&cpu);
  server.SetRequestHandler(
      [&](Packet p) { server.Respond(p, MakeMsg<PongMsg>(0)); });
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    sim::Spawn([](RpcEndpoint* c, RpcEndpoint* s, int* d) -> sim::Task<void> {
      auto r = co_await c->Call(s->id(), MakeMsg<PingMsg>(1));
      EXPECT_TRUE(r.ok());
      if (r.ok()) {
        (*d)++;
      }
    }(&client, &server, &done));
  }
  h.sim_.Run();
  EXPECT_EQ(done, 10);
  // 10 requests * (rx + tx) on one core.
  EXPECT_EQ(cpu.busy_time(), 10 * (h.costs_.rx_cost + h.costs_.tx_cost));
}

}  // namespace
}  // namespace switchfs::net
