// Property-based consistency sweeps: random operation soups across seeds and
// fault profiles, checked against global invariants after quiescence:
//  (I1) every directory's size attribute equals its entry-list cardinality,
//  (I2) every file whose create was acknowledged (and not later unlinked)
//       is visible to stat AND listed by readdir,
//  (I3) no change-log entries linger after the drain,
//  (I4) the switch dirty set ends empty (every scattered directory returned
//       to normal state via reads or proactive aggregation, Fig 3).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/strings.h"
#include "tests/switchfs_test_util.h"

namespace switchfs::core {
namespace {

struct SweepParam {
  uint64_t seed;
  double loss;
  double dup;
  int jitter_us;
};

class ConsistencySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConsistencySweep, RandomOpSoupUpholdsInvariants) {
  const SweepParam param = GetParam();
  ClusterConfig cfg = SmallClusterConfig(4);
  cfg.seed = param.seed;
  cfg.faults.loss_probability = param.loss;
  cfg.faults.duplicate_probability = param.dup;
  cfg.faults.reorder_jitter = sim::Microseconds(param.jitter_us);
  FsHarness fs(cfg);

  constexpr int kDirs = 6;
  std::vector<std::string> dirs;
  for (int d = 0; d < kDirs; ++d) {
    dirs.push_back("/d" + std::to_string(d));
    ASSERT_TRUE(fs.Mkdir(dirs.back()).ok());
  }

  // Concurrent workers mutate a partitioned namespace (each worker owns its
  // name suffix so the expected end state is exact).
  constexpr int kWorkers = 6;
  constexpr int kOpsPerWorker = 60;
  struct WorkerLog {
    std::set<std::string> live;  // paths this worker believes exist
  };
  std::vector<WorkerLog> logs(kWorkers);
  std::vector<std::unique_ptr<SwitchFsClient>> clients;
  for (int w = 0; w < kWorkers; ++w) {
    clients.push_back(fs.cluster.MakeClient());
  }

  for (int w = 0; w < kWorkers; ++w) {
    sim::Spawn([](SwitchFsClient* c, std::vector<std::string> dirs, int id,
                  uint64_t seed, WorkerLog* log) -> sim::Task<void> {
      Rng rng(seed ^ (0xabcdefULL * (id + 1)));
      int counter = 0;
      for (int i = 0; i < kOpsPerWorker; ++i) {
        const std::string& dir = dirs[rng.NextBelow(dirs.size())];
        const int action = static_cast<int>(rng.NextBelow(10));
        if (action < 5 || log->live.empty()) {
          // Create a fresh file. Under lossy transport a client-level retry
          // can observe ALREADY_EXISTS for its *own* earlier success (names
          // are worker-unique), so that outcome also means "exists".
          const std::string path =
              dir + "/w" + std::to_string(id) + "_" + std::to_string(counter++);
          Status s = co_await c->Create(path);
          if (s.ok() || s.code() == StatusCode::kAlreadyExists) {
            log->live.insert(path);
          }
        } else if (action < 7) {
          // Delete one of ours; NOT_FOUND after retries likewise means the
          // earlier attempt already executed.
          const std::string path = *log->live.begin();
          Status s = co_await c->Unlink(path);
          if (s.ok() || s.code() == StatusCode::kNotFound) {
            log->live.erase(path);
          }
        } else if (action < 9) {
          (void)co_await c->StatDir(dir);
        } else {
          (void)co_await c->Readdir(dir);
        }
      }
    }(clients[w].get(), dirs, w, param.seed, &logs[w]));
  }
  fs.cluster.sim().Run();

  // Expected end state per directory.
  std::map<std::string, std::set<std::string>> expected;
  for (const auto& d : dirs) {
    expected[d] = {};
  }
  for (const WorkerLog& log : logs) {
    for (const std::string& path : log.live) {
      expected[std::string(switchfs::ParentPath(path))].insert(
          std::string(switchfs::Basename(path)));
    }
  }

  // (I3): nothing pending after the drain.
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);

  for (const auto& d : dirs) {
    // (I1) + (I2): size == |entries| == expected set.
    auto sd = fs.StatDir(d);
    ASSERT_TRUE(sd.ok()) << d;
    auto listing = fs.Readdir(d);
    ASSERT_TRUE(listing.ok()) << d;
    std::set<std::string> got;
    for (const DirEntry& e : *listing) {
      got.insert(e.name);
    }
    EXPECT_EQ(sd->size, got.size()) << d;
    EXPECT_EQ(got, expected[d]) << d;
    for (const std::string& name : expected[d]) {
      EXPECT_TRUE(fs.Stat(d + "/" + name).ok()) << d << "/" << name;
    }
  }

  // (I4): all fingerprints cleared from the dirty set after the reads above.
  uint64_t population = 0;
  for (int pipe = 0; pipe < 2; ++pipe) {
    population += fs.cluster.data_plane()->dirty_set(pipe).Population();
  }
  EXPECT_EQ(population, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFaults, ConsistencySweep,
    ::testing::Values(SweepParam{1, 0.0, 0.0, 0},
                      SweepParam{2, 0.0, 0.0, 0},
                      SweepParam{3, 0.0, 0.0, 4},
                      SweepParam{4, 0.02, 0.0, 0},
                      SweepParam{5, 0.0, 0.05, 0},
                      SweepParam{6, 0.02, 0.03, 2},
                      SweepParam{7, 0.05, 0.05, 4},
                      SweepParam{8, 0.0, 0.1, 8}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_loss" +
             std::to_string(static_cast<int>(info.param.loss * 100)) +
             "_dup" + std::to_string(static_cast<int>(info.param.dup * 100)) +
             "_jit" + std::to_string(info.param.jitter_us);
    });

}  // namespace
}  // namespace switchfs::core
