// Property-based consistency sweeps: random operation soups across seeds and
// fault profiles, checked against global invariants after quiescence:
//  (I1) every directory's size attribute equals its entry-list cardinality,
//  (I2) every file whose create was acknowledged (and not later unlinked)
//       is visible to stat AND listed by readdir,
//  (I3) no change-log entries linger after the drain,
//  (I4) the switch dirty set ends empty (every scattered directory returned
//       to normal state via reads or proactive aggregation, Fig 3).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/strings.h"
#include "tests/switchfs_test_util.h"

namespace switchfs::core {
namespace {

struct SweepParam {
  uint64_t seed;
  double loss;
  double dup;
  int jitter_us;
};

class ConsistencySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConsistencySweep, RandomOpSoupUpholdsInvariants) {
  const SweepParam param = GetParam();
  ClusterConfig cfg = SmallClusterConfig(4);
  cfg.seed = param.seed;
  cfg.faults.loss_probability = param.loss;
  cfg.faults.duplicate_probability = param.dup;
  cfg.faults.reorder_jitter = sim::Microseconds(param.jitter_us);
  FsHarness fs(cfg);

  constexpr int kDirs = 6;
  std::vector<std::string> dirs;
  for (int d = 0; d < kDirs; ++d) {
    dirs.push_back("/d" + std::to_string(d));
    ASSERT_TRUE(fs.Mkdir(dirs.back()).ok());
  }

  // Concurrent workers mutate a partitioned namespace (each worker owns its
  // name suffix so the expected end state is exact).
  constexpr int kWorkers = 6;
  constexpr int kOpsPerWorker = 60;
  struct WorkerLog {
    std::set<std::string> live;  // paths this worker believes exist
  };
  std::vector<WorkerLog> logs(kWorkers);
  std::vector<std::unique_ptr<SwitchFsClient>> clients;
  for (int w = 0; w < kWorkers; ++w) {
    clients.push_back(fs.cluster.MakeClient());
  }

  for (int w = 0; w < kWorkers; ++w) {
    sim::Spawn([](SwitchFsClient* c, std::vector<std::string> dirs, int id,
                  uint64_t seed, WorkerLog* log) -> sim::Task<void> {
      Rng rng(seed ^ (0xabcdefULL * (id + 1)));
      int counter = 0;
      for (int i = 0; i < kOpsPerWorker; ++i) {
        const std::string& dir = dirs[rng.NextBelow(dirs.size())];
        const int action = static_cast<int>(rng.NextBelow(10));
        if (action < 5 || log->live.empty()) {
          // Create a fresh file. Under lossy transport a client-level retry
          // can observe ALREADY_EXISTS for its *own* earlier success (names
          // are worker-unique), so that outcome also means "exists".
          const std::string path =
              dir + "/w" + std::to_string(id) + "_" + std::to_string(counter++);
          Status s = co_await c->Create(path);
          if (s.ok() || s.code() == StatusCode::kAlreadyExists) {
            log->live.insert(path);
          }
        } else if (action < 7) {
          // Delete one of ours; NOT_FOUND after retries likewise means the
          // earlier attempt already executed.
          const std::string path = *log->live.begin();
          Status s = co_await c->Unlink(path);
          if (s.ok() || s.code() == StatusCode::kNotFound) {
            log->live.erase(path);
          }
        } else if (action < 9) {
          (void)co_await c->StatDir(dir);
        } else {
          (void)co_await c->Readdir(dir);
        }
      }
    }(clients[w].get(), dirs, w, param.seed, &logs[w]));
  }
  fs.cluster.sim().Run();

  // Expected end state per directory.
  std::map<std::string, std::set<std::string>> expected;
  for (const auto& d : dirs) {
    expected[d] = {};
  }
  for (const WorkerLog& log : logs) {
    for (const std::string& path : log.live) {
      expected[std::string(switchfs::ParentPath(path))].insert(
          std::string(switchfs::Basename(path)));
    }
  }

  // (I3): nothing pending after the drain.
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);

  for (const auto& d : dirs) {
    // (I1) + (I2): size == |entries| == expected set.
    auto sd = fs.StatDir(d);
    ASSERT_TRUE(sd.ok()) << d;
    auto listing = fs.Readdir(d);
    ASSERT_TRUE(listing.ok()) << d;
    std::set<std::string> got;
    for (const DirEntry& e : *listing) {
      got.insert(e.name);
    }
    EXPECT_EQ(sd->size, got.size()) << d;
    EXPECT_EQ(got, expected[d]) << d;
    for (const std::string& name : expected[d]) {
      EXPECT_TRUE(fs.Stat(d + "/" + name).ok()) << d << "/" << name;
    }
  }

  // (I4): all fingerprints cleared from the dirty set after the reads above.
  uint64_t population = 0;
  for (int pipe = 0; pipe < 2; ++pipe) {
    population += fs.cluster.data_plane()->dirty_set(pipe).Population();
  }
  EXPECT_EQ(population, 0u);
}

// Rename-storm sweep (§5.2 rename race, moved_fp rebind): concurrent
// directory renames race create/unlink storms inside the renamed
// directories. Entries that commit under a directory's old fingerprint in
// the race window must be re-keyed to the new owner (moved tombstone), so
// the end-state invariant is absolute: no committed dirent ever vanishes —
// every directory's listing at its final path equals the exact set of
// acknowledged creates minus acknowledged unlinks, and size matches.
class RenameStormSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RenameStormSweep, NoCommittedDirentVanishes) {
  const uint64_t seed = GetParam();
  ClusterConfig cfg = SmallClusterConfig(4);
  cfg.seed = seed;
  FsHarness fs(cfg);

  constexpr int kSlots = 4;
  constexpr int kWorkers = 4;
  constexpr int kOpsPerWorker = 40;
  constexpr int kRenameRounds = 3;

  // current[i] is directory slot i's path right now; the renamer updates it
  // after each successful rename (coroutines are cooperative, so workers
  // read a consistent value).
  std::vector<std::string> current(kSlots);
  for (int i = 0; i < kSlots; ++i) {
    current[i] = "/d" + std::to_string(i);
    ASSERT_TRUE(fs.Mkdir(current[i]).ok());
  }

  struct WorkerLog {
    std::set<std::pair<int, std::string>> live;  // (slot, name) believed alive
  };
  std::vector<WorkerLog> logs(kWorkers);
  std::vector<std::unique_ptr<SwitchFsClient>> clients;
  for (int w = 0; w < kWorkers; ++w) {
    clients.push_back(fs.cluster.MakeClient());
  }
  for (int w = 0; w < kWorkers; ++w) {
    sim::Spawn([](SwitchFsClient* c, const std::vector<std::string>* cur,
                  int id, uint64_t seed, WorkerLog* log) -> sim::Task<void> {
      Rng rng(seed ^ (0x51acULL * (id + 1)));
      int counter = 0;
      for (int i = 0; i < kOpsPerWorker; ++i) {
        const int slot = static_cast<int>(rng.NextBelow(kSlots));
        if (rng.NextBelow(10) < 7 || log->live.empty()) {
          const std::string name =
              "w" + std::to_string(id) + "_" + std::to_string(counter++);
          Status s = co_await c->Create((*cur)[slot] + "/" + name);
          // A failed create (NOT_FOUND mid-rename, retries exhausted) did
          // not execute; only acknowledged creates are expected to survive.
          if (s.ok() || s.code() == StatusCode::kAlreadyExists) {
            log->live.insert({slot, name});
          }
        } else {
          const auto [slot2, name] = *log->live.begin();
          Status s = co_await c->Unlink((*cur)[slot2] + "/" + name);
          // Names are worker-unique, so the executing server cannot report
          // NOT_FOUND for a live file; a failure here means the unlink never
          // resolved (rename race) and the file is still live.
          if (s.ok()) {
            log->live.erase({slot2, name});
          }
        }
      }
    }(clients[w].get(), &current, w, seed, &logs[w]));
  }
  // The renamer storms every slot while the workers run.
  bool renames_done = false;
  sim::Spawn([](sim::Simulator* sm, SwitchFsClient* c,
                std::vector<std::string>* cur, uint64_t seed,
                bool* done) -> sim::Task<void> {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    for (int round = 0; round < kRenameRounds; ++round) {
      for (int i = 0; i < kSlots; ++i) {
        co_await sim::Delay(sm, sim::Microseconds(20 + rng.NextBelow(60)));
        const std::string to =
            "/m" + std::to_string(i) + "_" + std::to_string(round);
        Status s = co_await c->Rename((*cur)[i], to);
        if (!s.ok()) {  // gtest ASSERT cannot `return` from a coroutine
          ADD_FAILURE() << (*cur)[i] << " -> " << to << ": " << s.ToString();
          co_return;
        }
        (*cur)[i] = to;
      }
    }
    *done = true;
  }(&fs.cluster.sim(), fs.client.get(), &current, seed, &renames_done));
  fs.cluster.sim().Run();
  ASSERT_TRUE(renames_done);

  // Expected exact end state per slot.
  std::vector<std::set<std::string>> expected(kSlots);
  for (const WorkerLog& log : logs) {
    for (const auto& [slot, name] : log.live) {
      expected[slot].insert(name);
    }
  }

  // The storm must actually exercise the race: entries committed under old
  // fingerprints were re-keyed, not trimmed (with moved_rebind off they are
  // trimmed and the exact-listing checks below fail).
  const auto st = fs.cluster.TotalStats();
  EXPECT_GT(st.entries_rebound + st.agg_entries_rebound, 0u);

  // (I3) nothing pending after the drain, and (I1)+(I2) at the final paths.
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);
  for (int i = 0; i < kSlots; ++i) {
    auto sd = fs.StatDir(current[i]);
    ASSERT_TRUE(sd.ok()) << current[i];
    auto listing = fs.Readdir(current[i]);
    ASSERT_TRUE(listing.ok()) << current[i];
    std::set<std::string> got;
    for (const DirEntry& e : *listing) {
      got.insert(e.name);
    }
    EXPECT_EQ(sd->size, got.size()) << current[i];
    EXPECT_EQ(got, expected[i]) << current[i];
    for (const std::string& name : expected[i]) {
      EXPECT_TRUE(fs.Stat(current[i] + "/" + name).ok())
          << current[i] << "/" << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RenameStormSweep,
                         ::testing::Values(11, 12, 13, 14),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

INSTANTIATE_TEST_SUITE_P(
    SeedsAndFaults, ConsistencySweep,
    ::testing::Values(SweepParam{1, 0.0, 0.0, 0},
                      SweepParam{2, 0.0, 0.0, 0},
                      SweepParam{3, 0.0, 0.0, 4},
                      SweepParam{4, 0.02, 0.0, 0},
                      SweepParam{5, 0.0, 0.05, 0},
                      SweepParam{6, 0.02, 0.03, 2},
                      SweepParam{7, 0.05, 0.05, 4},
                      SweepParam{8, 0.0, 0.1, 8}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_loss" +
             std::to_string(static_cast<int>(info.param.loss * 100)) +
             "_dup" + std::to_string(static_cast<int>(info.param.dup * 100)) +
             "_jit" + std::to_string(info.param.jitter_us);
    });

}  // namespace
}  // namespace switchfs::core
