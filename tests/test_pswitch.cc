// Tests for the programmable-switch model: fingerprint packing, register
// actions, the set-associative dirty set (including the paper's Fig 10
// duplicate-cleanup insert walk and §5.4.1 remove-sequence protection), and
// the packet-level data plane behaviour.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/random.h"
#include "src/net/packet.h"
#include "src/pswitch/data_plane.h"
#include "src/pswitch/dirty_set.h"
#include "src/pswitch/fingerprint.h"
#include "src/pswitch/register_stage.h"

namespace switchfs::psw {
namespace {

TEST(Fingerprint, PacksIndexAndTag) {
  const Fingerprint fp = MakeFingerprint(0x1ffff, 0xdeadbeef);
  EXPECT_EQ(FingerprintIndex(fp), 0x1ffffu);
  EXPECT_EQ(FingerprintTag(fp), 0xdeadbeefu);
  EXPECT_LE(fp, kFingerprintMask);
}

TEST(Fingerprint, FromHashNeverProducesZeroTag) {
  // A hash whose low 32 bits are zero must be remapped.
  const Fingerprint fp = FingerprintFromHash(0xabcd00000000ULL << 4);
  EXPECT_NE(FingerprintTag(fp), 0u);
  for (uint64_t h = 0; h < 1000; ++h) {
    EXPECT_NE(FingerprintTag(FingerprintFromHash(Mix64(h))), 0u);
  }
}

TEST(RegisterStage, QueryInsertRemoveSemantics) {
  RegisterStage stage(16);
  EXPECT_FALSE(stage.Query(3, 7));
  // Insert into empty register succeeds and writes.
  EXPECT_TRUE(stage.ConditionalInsert(3, 7));
  EXPECT_TRUE(stage.Query(3, 7));
  // Re-insert of the same tag succeeds without change.
  EXPECT_TRUE(stage.ConditionalInsert(3, 7));
  // Different tag at an occupied register fails and does not overwrite.
  EXPECT_FALSE(stage.ConditionalInsert(3, 9));
  EXPECT_EQ(stage.ValueAt(3), 7u);
  // Remove of a non-matching tag is a no-op.
  stage.ConditionalRemove(3, 9);
  EXPECT_EQ(stage.ValueAt(3), 7u);
  stage.ConditionalRemove(3, 7);
  EXPECT_EQ(stage.ValueAt(3), 0u);
}

DirtySetConfig SmallConfig(int stages = 4, uint32_t regs = 64) {
  DirtySetConfig c;
  c.num_stages = stages;
  c.registers_per_stage = regs;
  return c;
}

TEST(DirtySet, InsertQueryRemoveRoundTrip) {
  DirtySet ds(SmallConfig());
  const Fingerprint fp = MakeFingerprint(5, 77);
  EXPECT_FALSE(ds.Query(fp));
  EXPECT_TRUE(ds.Insert(fp));
  EXPECT_TRUE(ds.Query(fp));
  ds.RemoveUnchecked(fp);
  EXPECT_FALSE(ds.Query(fp));
}

TEST(DirtySet, SetAssociativityHoldsStageCountEntries) {
  DirtySet ds(SmallConfig(/*stages=*/4));
  // Four distinct tags mapping to the same index fill the set.
  for (uint32_t t = 1; t <= 4; ++t) {
    EXPECT_TRUE(ds.Insert(MakeFingerprint(9, t))) << t;
  }
  // Fifth conflicts: overflow.
  EXPECT_FALSE(ds.Insert(MakeFingerprint(9, 5)));
  EXPECT_EQ(ds.insert_overflows(), 1u);
  // All four are queryable; a different index is unaffected.
  for (uint32_t t = 1; t <= 4; ++t) {
    EXPECT_TRUE(ds.Query(MakeFingerprint(9, t)));
  }
  EXPECT_TRUE(ds.Insert(MakeFingerprint(10, 5)));
}

TEST(DirtySet, ReinsertIsIdempotent) {
  DirtySet ds(SmallConfig());
  const Fingerprint fp = MakeFingerprint(3, 123);
  EXPECT_TRUE(ds.Insert(fp));
  EXPECT_TRUE(ds.Insert(fp));
  EXPECT_TRUE(ds.Insert(fp));
  EXPECT_EQ(ds.Population(), 1u);  // no duplicate tags (Fig 10 cleanup)
  ds.RemoveUnchecked(fp);
  EXPECT_FALSE(ds.Query(fp));
  EXPECT_EQ(ds.Population(), 0u);
}

TEST(DirtySet, InsertCleansDuplicateInLaterStage) {
  // Construct the Fig 10 scenario: tag present in a later stage, then an
  // earlier slot frees up and the tag is re-inserted — the walk must leave
  // exactly one copy.
  DirtySet ds(SmallConfig(/*stages=*/3));
  const uint32_t idx = 7;
  const Fingerprint a = MakeFingerprint(idx, 1);
  const Fingerprint b = MakeFingerprint(idx, 2);
  ASSERT_TRUE(ds.Insert(a));  // stage 0
  ASSERT_TRUE(ds.Insert(b));  // stage 1
  ds.RemoveUnchecked(a);      // stage 0 now empty; b in stage 1
  ASSERT_TRUE(ds.Insert(b));  // lands in stage 0, must clean stage 1 copy
  EXPECT_EQ(ds.Population(), 1u);
  ds.RemoveUnchecked(b);
  EXPECT_FALSE(ds.Query(b));
  EXPECT_EQ(ds.Population(), 0u);
}

TEST(DirtySet, RemoveSequenceRejectsStaleDuplicates) {
  DirtySet ds(SmallConfig());
  const Fingerprint fp = MakeFingerprint(2, 50);
  ASSERT_TRUE(ds.Insert(fp));
  EXPECT_TRUE(ds.Remove(fp, /*origin=*/1, /*seq=*/1));
  EXPECT_FALSE(ds.Query(fp));
  // Re-insert by a subsequent operation.
  ASSERT_TRUE(ds.Insert(fp));
  // A delayed duplicate of the old remove must NOT evict the new insert.
  EXPECT_FALSE(ds.Remove(fp, /*origin=*/1, /*seq=*/1));
  EXPECT_TRUE(ds.Query(fp));
  // A genuinely new remove (higher seq) works.
  EXPECT_TRUE(ds.Remove(fp, /*origin=*/1, /*seq=*/2));
  EXPECT_FALSE(ds.Query(fp));
  EXPECT_EQ(ds.stale_removes(), 1u);
}

TEST(DirtySet, RemoveSequencesArePerOrigin) {
  DirtySet ds(SmallConfig());
  const Fingerprint fp = MakeFingerprint(2, 50);
  ASSERT_TRUE(ds.Insert(fp));
  EXPECT_TRUE(ds.Remove(fp, /*origin=*/1, /*seq=*/5));
  ASSERT_TRUE(ds.Insert(fp));
  // Another origin with a small seq is not stale.
  EXPECT_TRUE(ds.Remove(fp, /*origin=*/2, /*seq=*/1));
}

TEST(DirtySet, ClearWipesEverything) {
  DirtySet ds(SmallConfig());
  for (uint32_t t = 1; t <= 20; ++t) {
    ds.Insert(MakeFingerprint(t % 8, t));
  }
  ds.Remove(MakeFingerprint(1, 1), 1, 9);
  ds.Clear();
  EXPECT_EQ(ds.Population(), 0u);
  // Sequence bookkeeping was also lost: an old seq is accepted again.
  ds.Insert(MakeFingerprint(1, 1));
  EXPECT_TRUE(ds.Remove(MakeFingerprint(1, 1), 1, 1));
}

TEST(DirtySet, FullSizeMemoryFootprintMatchesPaper) {
  DirtySet ds{DirtySetConfig{}};  // 10 stages x 131072 registers
  // §6.5: 1,310,720 32-bit registers = 5 MiB.
  EXPECT_EQ(ds.MemoryBytes(), 5u * 1024 * 1024);
}

TEST(DirtySet, HighUtilizationBeforeOverflow) {
  // With random fingerprints the set-associative layout should absorb a load
  // factor well past a direct-mapped table. Fill to 50% of capacity and
  // expect a very low overflow rate.
  DirtySet ds(SmallConfig(/*stages=*/10, /*regs=*/1024));
  Rng rng(7);
  const uint64_t capacity = 10 * 1024;
  uint64_t overflows = 0;
  for (uint64_t i = 0; i < capacity / 2; ++i) {
    if (!ds.Insert(FingerprintFromHash(rng.Next()))) {
      overflows++;
    }
  }
  EXPECT_LT(overflows, capacity / 2 / 100);  // <1% at 50% fill
}

// --- data plane ---

DataPlaneConfig SmallPlane() {
  DataPlaneConfig c;
  c.dirty_set = SmallConfig(4, 256);
  c.num_pipes = 2;
  return c;
}

net::Packet DsPacket(net::DsOp op, Fingerprint fp, net::NodeId src,
                     net::NodeId dst) {
  net::Packet p;
  p.src = src;
  p.dst = dst;
  p.ds.op = op;
  p.ds.fingerprint = fp;
  p.ds.origin = src;
  return p;
}

TEST(DataPlane, RegularPacketsForwardUntouched) {
  DataPlane dp(SmallPlane());
  net::Packet p;
  p.src = 1;
  p.dst = 2;
  auto out = dp.Process(p);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst, 2u);
  EXPECT_EQ(dp.stats().regular_forwarded, 1u);
}

TEST(DataPlane, QueryAttachesResult) {
  DataPlane dp(SmallPlane());
  const Fingerprint fp = FingerprintFromHash(0x1234567890ULL);
  auto q1 = dp.Process(DsPacket(net::DsOp::kQuery, fp, 1, 2));
  ASSERT_EQ(q1.size(), 1u);
  EXPECT_FALSE(q1[0].ds.ret);
  // Insert via data plane, then re-query.
  net::Packet ins = DsPacket(net::DsOp::kInsert, fp, 3, 9);
  ins.ds.notify = 9;
  dp.Process(ins);
  auto q2 = dp.Process(DsPacket(net::DsOp::kQuery, fp, 1, 2));
  ASSERT_EQ(q2.size(), 1u);
  EXPECT_TRUE(q2[0].ds.ret);
  EXPECT_EQ(q2[0].dst, 2u);  // forwarded to the original destination
}

TEST(DataPlane, InsertSuccessMulticastsToClientAndOrigin) {
  DataPlane dp(SmallPlane());
  const Fingerprint fp = FingerprintFromHash(42);
  net::Packet ins = DsPacket(net::DsOp::kInsert, fp, /*src=*/5, /*dst=*/9);
  auto out = dp.Process(ins);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].dst, 9u);  // client completion (7a)
  EXPECT_EQ(out[1].dst, 5u);  // origin unlock signal (7b)
  EXPECT_TRUE(out[0].ds.ret);
  EXPECT_TRUE(out[1].ds.ret);
  EXPECT_TRUE(dp.Contains(fp));
}

TEST(DataPlane, InsertOverflowRedirectsToAlternativeAddress) {
  DataPlane dp(SmallPlane());
  dp.SetForceInsertOverflow(true);
  const Fingerprint fp = FingerprintFromHash(42);
  net::Packet ins = DsPacket(net::DsOp::kInsert, fp, 5, 9);
  ins.ds.alt_dst = 7;  // parent directory's owner server
  auto out = dp.Process(ins);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst, 7u);
  EXPECT_FALSE(out[0].ds.ret);
  EXPECT_FALSE(dp.Contains(fp));
  EXPECT_EQ(dp.stats().insert_fallbacks, 1u);
}

TEST(DataPlane, RemoveMulticastsToAllOtherServers) {
  DataPlane dp(SmallPlane());
  dp.SetServerGroup({10, 11, 12, 13});
  const Fingerprint fp = FingerprintFromHash(42);
  dp.Process(DsPacket(net::DsOp::kInsert, fp, 10, 9));
  net::Packet rm = DsPacket(net::DsOp::kRemove, fp, 10, net::kServerMulticast);
  rm.ds.remove_seq = 1;
  auto out = dp.Process(rm);
  ASSERT_EQ(out.size(), 3u);
  std::set<net::NodeId> dsts;
  for (const auto& p : out) {
    dsts.insert(p.dst);
  }
  EXPECT_EQ(dsts, (std::set<net::NodeId>{11, 12, 13}));
  EXPECT_FALSE(dp.Contains(fp));
}

TEST(DataPlane, StaleRemoveIsDroppedEntirely) {
  DataPlane dp(SmallPlane());
  dp.SetServerGroup({10, 11});
  const Fingerprint fp = FingerprintFromHash(42);
  net::Packet rm = DsPacket(net::DsOp::kRemove, fp, 10, net::kServerMulticast);
  rm.ds.remove_seq = 5;
  EXPECT_EQ(dp.Process(rm).size(), 1u);  // first remove multicasts
  dp.Process(DsPacket(net::DsOp::kInsert, fp, 10, 9));
  net::Packet stale = rm;  // duplicate with the same seq
  EXPECT_TRUE(dp.Process(stale).empty());
  EXPECT_TRUE(dp.Contains(fp));  // the later insert survived
  EXPECT_EQ(dp.stats().stale_removes, 1u);
}

TEST(DataPlane, PipesShardByFingerprintPrefix) {
  DataPlane dp(SmallPlane());
  Rng rng(3);
  int in_pipe0 = 0;
  int in_pipe1 = 0;
  for (int i = 0; i < 200; ++i) {
    const Fingerprint fp = FingerprintFromHash(rng.Next());
    dp.Process(DsPacket(net::DsOp::kInsert, fp, 1, 2));
    ASSERT_TRUE(dp.Contains(fp));
    if (dp.HomePipe(fp) == 0) {
      in_pipe0++;
    } else {
      in_pipe1++;
    }
  }
  // Random fingerprints spread across pipes.
  EXPECT_GT(in_pipe0, 50);
  EXPECT_GT(in_pipe1, 50);
}

TEST(DataPlane, ResetClearsAllPipes) {
  DataPlane dp(SmallPlane());
  Rng rng(3);
  std::vector<Fingerprint> fps;
  for (int i = 0; i < 50; ++i) {
    fps.push_back(FingerprintFromHash(rng.Next()));
    dp.Process(DsPacket(net::DsOp::kInsert, fps.back(), 1, 2));
  }
  dp.Reset();
  for (Fingerprint fp : fps) {
    EXPECT_FALSE(dp.Contains(fp));
  }
}

}  // namespace
}  // namespace switchfs::psw
