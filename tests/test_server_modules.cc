// Unit tests for the protocol modules extracted from the SwitchServer
// monolith (aggregation, push engine, rename coordinator): each runs against
// a bare ServerContext + ServerVolatile on a single simulated node — no
// Cluster, no SwitchFsClient — exercising the module boundary directly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/aggregation.h"
#include "src/core/push_engine.h"
#include "src/core/rename_coordinator.h"
#include "src/core/schema.h"
#include "src/net/network.h"
#include "src/tracker/owner_tracker.h"

namespace switchfs::core {
namespace {

class SingleNodeCluster : public ClusterContext {
 public:
  explicit SingleNodeCluster(net::NodeId node) : node_(node) {
    ring_.AddServer(0);
  }
  const HashRing& ring() const override { return ring_; }
  net::NodeId ServerNode(uint32_t) const override { return node_; }
  uint32_t ServerCount() const override { return 1; }

 private:
  HashRing ring_;
  net::NodeId node_;
};

// One server's modules over a bare context. Implements UpdatePublisher with
// a counter so commit paths run without the dirty-set insert machinery.
class ModuleHarness : public UpdatePublisher {
 public:
  ModuleHarness()
      : net(&sim, &costs, /*seed=*/7),
        sw(costs.plain_switch_delay),
        cpu(&sim, config.cores),
        rpc(&sim, &net),
        vol(std::make_shared<ServerVolatile>(&sim)) {
    net.SetSwitch(&sw);
    cluster = std::make_unique<SingleNodeCluster>(rpc.id());
    sw.SetServerGroup({rpc.id()});
    ctx = ServerContext{&sim,    &net, cluster.get(), &durable, &costs,
                        &config, &cpu, &rpc,          &stats,   &tracker_impl};
    agg = std::make_unique<Aggregation>(ctx);
    push = std::make_unique<PushEngine>(ctx, *agg);
    agg->SetRebinder(push.get());
    rename = std::make_unique<RenameCoordinator>(ctx, *agg, *push, *this);
    rpc.SetCpu(&cpu);
    rpc.SetRequestHandler([this](net::Packet p) { OnRequest(std::move(p)); });
    rpc.SetRawHandler([this](net::Packet p) { OnRaw(std::move(p)); });
  }

  sim::Task<void> PublishUpdate(const net::Packet* client_req, VolPtr v,
                                psw::Fingerprint, const InodeId&,
                                net::MsgPtr client_resp) override {
    (void)v;
    publishes++;
    if (client_req != nullptr) {
      rpc.Respond(*client_req, client_resp);
    }
    co_return;
  }

  // The rename module's server-side dependencies, minus SwitchServer.
  void OnRequest(net::Packet p) {
    VolPtr v = vol;
    switch (p.body->type) {
      case MetaReq::kType:
        sim::Spawn(rename->HandleRename(std::move(p), std::move(v)));
        break;
      case RenamePrepare::kType:
        sim::Spawn(rename->HandleRenamePrepare(std::move(p), std::move(v)));
        break;
      case RenameCommit::kType:
        sim::Spawn(rename->HandleRenameCommit(std::move(p), std::move(v)));
        break;
      case AggregateReq::kType:
        sim::Spawn(rename->HandleAggregateReq(std::move(p), std::move(v)));
        break;
      case AggEntries::kType:
        agg->HandleAggEntries(std::move(p), v);
        break;
      case LookupReq::kType: {
        const auto* req = static_cast<const LookupReq*>(p.body.get());
        auto resp = std::make_shared<LookupResp>();
        auto value = v->kv.Get(InodeKey(req->pid, req->name));
        if (value.has_value()) {
          resp->status = StatusCode::kOk;
          resp->attr = Attr::Decode(*value);
          resp->read_at = sim.Now();
        } else {
          resp->status = StatusCode::kNotFound;
        }
        rpc.Respond(p, resp);
        break;
      }
      default:
        break;
    }
  }

  void OnRaw(net::Packet p) {
    if (p.body == nullptr) {
      return;
    }
    if (p.body->type == AggDone::kType) {
      agg->HandleAggDone(*static_cast<const AggDone*>(p.body.get()), vol);
    }
  }

  // Seeds a directory inode at (pid, name) plus its dir-index row; returns
  // the new directory's id.
  InodeId SeedDir(const InodeId& pid, const std::string& name, uint64_t tag) {
    InodeId id;
    id.w[0] = tag;
    id.w[3] = 2;
    Attr attr;
    attr.id = id;
    attr.type = FileType::kDirectory;
    attr.mode = 0755;
    const std::string ikey = InodeKey(pid, name);
    vol->kv.Put(ikey, attr.Encode());
    vol->kv.Put(DirIndexKey(id),
                EncodeDirIndex(ikey, FingerprintOf(pid, name)));
    return id;
  }

  Attr ReadAttr(const InodeId& pid, const std::string& name) {
    auto value = vol->kv.Get(InodeKey(pid, name));
    EXPECT_TRUE(value.has_value());
    return value.has_value() ? Attr::Decode(*value) : Attr{};
  }

  StatusCode Rename(const PathRef& src, const PathRef& dst) {
    auto req = std::make_shared<MetaReq>();
    req->op = OpType::kRename;
    req->ref = src;
    req->ref2 = dst;
    StatusCode out = StatusCode::kInternal;
    net::RpcEndpoint client(&sim, &net);
    sim::Spawn([](net::RpcEndpoint* cli, net::NodeId server, net::MsgPtr msg,
                  StatusCode* o) -> sim::Task<void> {
      net::CallOptions opts;
      opts.timeout = sim::Milliseconds(100);
      opts.max_attempts = 2;
      auto r = co_await cli->Call(server, msg, opts);
      if (r.ok()) {
        if (const auto* resp = net::MsgAs<MetaResp>(*r)) {
          *o = resp->status;
        }
      }
    }(&client, rpc.id(), req, &out));
    sim.Run();
    return out;
  }

  sim::Simulator sim;
  sim::CostModel costs;
  net::Network net;
  net::PlainSwitch sw;
  ServerConfig config;
  // Simplest tracker over the bare context: scattered state lives in the
  // harness's own ServerVolatile, no extra nodes involved.
  tracker::OwnerTracker tracker_impl;
  DurableState durable;
  sim::CpuPool cpu;
  net::RpcEndpoint rpc;
  ServerStats stats;
  std::unique_ptr<SingleNodeCluster> cluster;
  ServerContext ctx;
  VolPtr vol;
  std::unique_ptr<Aggregation> agg;
  std::unique_ptr<PushEngine> push;
  std::unique_ptr<RenameCoordinator> rename;
  int publishes = 0;
};

ChangeLogEntry MakeEntry(uint64_t seq, const std::string& name, OpType op,
                         int64_t ts) {
  ChangeLogEntry e;
  e.seq = seq;
  e.timestamp = ts;
  e.op = op;
  e.name = name;
  e.entry_type = op == OpType::kMkdir ? FileType::kDirectory : FileType::kFile;
  e.size_delta = op == OpType::kCreate || op == OpType::kMkdir ? 1 : -1;
  return e;
}

class TwoNodeCluster : public ClusterContext {
 public:
  TwoNodeCluster(net::NodeId n0, net::NodeId n1) : nodes_{n0, n1} {
    ring_.AddServer(0);
    ring_.AddServer(1);
  }
  const HashRing& ring() const override { return ring_; }
  net::NodeId ServerNode(uint32_t i) const override { return nodes_[i]; }
  uint32_t ServerCount() const override { return 2; }

 private:
  HashRing ring_;
  net::NodeId nodes_[2];
};

// Two metadata-server module stacks (index 0 = push source, index 1 = the
// usual owner) over one simulated fabric: the minimal cluster that exercises
// real cross-server pushes — batching, retry, owner-side apply — without
// SwitchServer or clients.
class PushHarness {
 public:
  struct Node {
    Node(sim::Simulator* sim, net::Network* net, uint32_t index)
        : cpu(sim, config.cores), rpc(sim, net),
          vol(std::make_shared<ServerVolatile>(sim)) {
      config.index = index;
    }
    ServerConfig config;
    DurableState durable;
    sim::CpuPool cpu;
    net::RpcEndpoint rpc;
    ServerStats stats;
    ServerContext ctx;
    VolPtr vol;
    std::unique_ptr<Aggregation> agg;
    std::unique_ptr<PushEngine> push;
  };

  PushHarness()
      : net(&sim, &costs, /*seed=*/7),
        sw(costs.plain_switch_delay),
        src(&sim, &net, 0),
        owner(&sim, &net, 1) {
    net.SetSwitch(&sw);
    cluster = std::make_unique<TwoNodeCluster>(src.rpc.id(), owner.rpc.id());
    sw.SetServerGroup({src.rpc.id(), owner.rpc.id()});
    for (Node* n : {&src, &owner}) {
      n->ctx = ServerContext{&sim,       &net,   cluster.get(), &n->durable,
                             &costs,     &n->config, &n->cpu,   &n->rpc,
                             &n->stats,  &tracker_impl};
      n->agg = std::make_unique<Aggregation>(n->ctx);
      n->push = std::make_unique<PushEngine>(n->ctx, *n->agg);
      n->agg->SetRebinder(n->push.get());
      n->rpc.SetCpu(&n->cpu);
      n->rpc.SetRequestHandler(
          [this, n](net::Packet p) { OnRequest(*n, std::move(p)); });
      n->rpc.SetRawHandler(
          [this, n](net::Packet p) { OnRaw(*n, std::move(p)); });
    }
  }

  void OnRequest(Node& n, net::Packet p) {
    VolPtr v = n.vol;
    switch (p.body->type) {
      case PushReq::kType:
        sim::Spawn(n.push->HandlePush(std::move(p), std::move(v)));
        break;
      case AggEntries::kType:
        n.agg->HandleAggEntries(std::move(p), std::move(v));
        break;
      default:
        break;
    }
  }

  void OnRaw(Node& n, net::Packet p) {
    if (p.body == nullptr) {
      return;
    }
    switch (p.body->type) {
      case AggCollect::kType:
        sim::Spawn(n.agg->HandleAggCollect(std::move(p), n.vol));
        break;
      case AggDone::kType:
        n.agg->HandleAggDone(*static_cast<const AggDone*>(p.body.get()),
                             n.vol);
        break;
      default:
        break;
    }
  }

  // First "<prefix><i>" whose fingerprint the ring places on `owner_index`.
  std::string NameOwnedBy(const InodeId& pid, uint32_t owner_index,
                          const std::string& prefix) {
    for (int i = 0;; ++i) {
      const std::string name = prefix + std::to_string(i);
      if (cluster->ring().Owner(FingerprintOf(pid, name)) == owner_index) {
        return name;
      }
    }
  }

  // Seeds a directory inode + dir-index row in `n`'s store.
  InodeId SeedDirAt(Node& n, const InodeId& pid, const std::string& name,
                    uint64_t tag) {
    InodeId id;
    id.w[0] = tag;
    id.w[3] = 2;
    Attr attr;
    attr.id = id;
    attr.type = FileType::kDirectory;
    attr.mode = 0755;
    const std::string ikey = InodeKey(pid, name);
    n.vol->kv.Put(ikey, attr.Encode());
    n.vol->kv.Put(DirIndexKey(id),
                  EncodeDirIndex(ikey, FingerprintOf(pid, name)));
    return id;
  }

  // Appends `count` WAL-committed entries to src's change-log for (fp, dir)
  // and schedules the push (what a deferred-update commit does).
  void AppendAndSchedule(psw::Fingerprint fp, const InodeId& dir, int count) {
    ChangeLog& clog = src.vol->GetChangeLog(fp, dir);
    for (int i = 0; i < count; ++i) {
      const uint64_t seq = clog.last_appended_seq() + 1;
      ChangeLogEntry e = MakeEntry(seq, "e" + std::to_string(seq),
                                   OpType::kCreate, 100 + static_cast<int>(seq));
      e.wal_lsn = src.durable.wal.Append(1, "op");
      clog.Restore(std::move(e));
    }
    src.push->MaybeSchedulePush(src.vol, fp, dir);
  }

  size_t SrcPending(psw::Fingerprint fp, const InodeId& dir) {
    return src.vol->GetChangeLog(fp, dir).size();
  }

  Attr OwnerAttr(const InodeId& pid, const std::string& name) {
    auto value = owner.vol->kv.Get(InodeKey(pid, name));
    EXPECT_TRUE(value.has_value());
    return value.has_value() ? Attr::Decode(*value) : Attr{};
  }

  sim::Simulator sim;
  sim::CostModel costs;
  net::Network net;
  net::PlainSwitch sw;
  tracker::OwnerTracker tracker_impl;
  std::unique_ptr<TwoNodeCluster> cluster;
  Node src;
  Node owner;
};

// The §5.3 batching win: pushes are coalesced per owner server — many small
// directories headed to the same owner ride one PushReq with one PerDir
// section each, not one packet per directory.
TEST(PushEngineModule, BatchesDirsHeadedToSameOwnerIntoOnePacket) {
  PushHarness h;
  const InodeId parent = RootId();
  constexpr int kDirs = 8;
  std::vector<std::string> names;
  std::vector<InodeId> ids;
  std::vector<psw::Fingerprint> fps;
  std::string prefix = "d";
  for (int d = 0; d < kDirs; ++d) {
    // Distinct names, every fingerprint owned by server 1.
    const std::string name = h.NameOwnedBy(parent, 1, prefix);
    prefix = name + "_";
    names.push_back(name);
    ids.push_back(h.SeedDirAt(h.owner, parent, name, 100 + d));
    fps.push_back(FingerprintOf(parent, name));
  }
  for (int d = 0; d < kDirs; ++d) {
    h.AppendAndSchedule(fps[d], ids[d], 2);  // 16 entries total, < MTU
  }
  h.sim.Run();

  EXPECT_EQ(h.src.stats.pushes_sent, 1u);
  EXPECT_EQ(h.src.stats.push_dirs_sent, static_cast<uint64_t>(kDirs));
  EXPECT_EQ(h.src.stats.push_entries_sent, 2u * kDirs);
  EXPECT_EQ(h.src.stats.push_failures, 0u);
  EXPECT_EQ(h.src.stats.pushes_local, 0u);
  EXPECT_EQ(h.owner.stats.pushes_received, 1u);
  EXPECT_EQ(h.owner.stats.entries_applied, 2u * kDirs);
  for (int d = 0; d < kDirs; ++d) {
    EXPECT_EQ(h.SrcPending(fps[d], ids[d]), 0u) << names[d];
    EXPECT_EQ(h.OwnerAttr(parent, names[d]).size, 2u) << names[d];
  }
  // Every source WAL record was marked applied by the acked trim.
  for (const kv::WalRecord& r : h.src.durable.wal.records()) {
    EXPECT_TRUE(r.applied);
  }
}

// A batch never exceeds mtu_entries entries; the overflow splits across
// packets (29 + 16 here) and every log still drains completely. The owner's
// quiet-period timer is parked: with the exact ready-entry MTU trigger the
// first batch fires as soon as two logs accumulate an MTU worth, and an
// owner-side aggregation racing the second packet would drain the split
// directory's tail out from under the push accounting below.
TEST(PushEngineModule, SplitsBatchesAtMtuBoundary) {
  PushHarness h;
  h.src.config.owner_quiet_period = sim::Seconds(100);
  h.owner.config.owner_quiet_period = sim::Seconds(100);
  const InodeId parent = RootId();
  std::vector<InodeId> ids;
  std::vector<psw::Fingerprint> fps;
  std::string prefix = "m";
  for (int d = 0; d < 3; ++d) {
    const std::string name = h.NameOwnedBy(parent, 1, prefix);
    prefix = name + "_";
    ids.push_back(h.SeedDirAt(h.owner, parent, name, 200 + d));
    fps.push_back(FingerprintOf(parent, name));
  }
  for (int d = 0; d < 3; ++d) {
    h.AppendAndSchedule(fps[d], ids[d], 15);  // 45 entries vs mtu 29
  }
  h.sim.Run();

  EXPECT_EQ(h.src.stats.pushes_sent, 2u);
  EXPECT_EQ(h.src.stats.push_entries_sent, 45u);
  // The dir cut by the MTU boundary appears in both packets.
  EXPECT_EQ(h.src.stats.push_dirs_sent, 4u);
  EXPECT_EQ(h.owner.stats.entries_applied, 45u);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(h.SrcPending(fps[d], ids[d]), 0u);
  }
}

// A sub-MTU trickle spread across many directories of one owner must not
// defer flushing until the idle timeout: an MTU worth of entries accumulated
// across the owner's ready logs triggers a drain immediately.
TEST(PushEngineModule, AggregateMtuAcrossDirsTriggersImmediateDrain) {
  PushHarness h;
  const InodeId parent = RootId();
  const int kDirs = h.src.config.push_mtu_entries + 3;  // one entry each
  std::string prefix = "t";
  for (int d = 0; d < kDirs; ++d) {
    const std::string name = h.NameOwnedBy(parent, 1, prefix);
    prefix = name + "_";
    const InodeId id = h.SeedDirAt(h.owner, parent, name, 700 + d);
    h.AppendAndSchedule(FingerprintOf(parent, name), id, 1);
  }
  // Just under push_idle_timeout: an idle-triggered push could not even
  // have started, so a completed push proves the aggregate MTU trigger.
  h.sim.RunUntil(h.sim.Now() + h.src.config.push_idle_timeout - 1);
  EXPECT_GE(h.src.stats.pushes_sent, 1u);
  EXPECT_GE(h.src.stats.push_entries_sent,
            static_cast<uint64_t>(h.src.config.push_mtu_entries));
  // The idle timer later flushes the remainder.
  h.sim.Run();
  EXPECT_EQ(h.owner.stats.entries_applied, static_cast<uint64_t>(kDirs));
}

// Regression (stranded backlog): a push that fails because the owner is down
// must re-arm a retry instead of stranding the change-log until an unrelated
// trigger. Kill the owner mid-push, then restart it: the log drains.
TEST(PushEngineModule, FailedPushRetriesUntilOwnerRestarts) {
  PushHarness h;
  const InodeId parent = RootId();
  const std::string name = h.NameOwnedBy(parent, 1, "r");
  const InodeId dir = h.SeedDirAt(h.owner, parent, name, 300);
  const psw::Fingerprint fp = FingerprintOf(parent, name);

  h.owner.rpc.SetEnabled(false);  // owner crashes before the push fires
  h.AppendAndSchedule(fp, dir, 3);
  h.sim.RunUntil(h.sim.Now() + sim::Milliseconds(5));

  EXPECT_GE(h.src.stats.push_failures, 1u);
  EXPECT_EQ(h.src.stats.pushes_sent, 0u);
  EXPECT_EQ(h.SrcPending(fp, dir), 3u) << "backlog must survive the failure";

  h.owner.rpc.SetEnabled(true);  // owner restarts; the armed retry drains
  h.sim.Run();

  EXPECT_EQ(h.SrcPending(fp, dir), 0u);
  EXPECT_EQ(h.src.stats.pushes_sent, 1u);
  EXPECT_EQ(h.OwnerAttr(parent, name).size, 3u);
  for (const kv::WalRecord& r : h.src.durable.wal.records()) {
    EXPECT_TRUE(r.applied);
  }
}

// Regression (rmdir race): pushing entries for a directory the owner no
// longer knows (removed since they were logged) must ack the section's max
// seq so the source trims the obsolete backlog — not acked_seq = 0, which
// re-pushed it forever.
TEST(PushEngineModule, VanishedDirectoryPushTrimsSourceLog) {
  PushHarness h;
  const InodeId parent = RootId();
  const std::string name = h.NameOwnedBy(parent, 1, "v");
  // No SeedDirAt: the owner has no dir-index row — the directory is gone.
  InodeId dir;
  dir.w[0] = 400;
  dir.w[3] = 2;
  const psw::Fingerprint fp = FingerprintOf(parent, name);

  h.AppendAndSchedule(fp, dir, 2);
  h.sim.Run();

  EXPECT_EQ(h.SrcPending(fp, dir), 0u) << "obsolete entries must be trimmed";
  EXPECT_EQ(h.src.stats.pushes_sent, 1u);
  EXPECT_EQ(h.owner.stats.pushes_received, 1u);
  EXPECT_EQ(h.owner.stats.entries_applied, 0u);
  for (const kv::WalRecord& r : h.src.durable.wal.records()) {
    EXPECT_TRUE(r.applied);
  }
}

// Regression (stale dir-index after WAL replay): an owner recovering from a
// crash replays the mkdir's dir-index row but an rmdir's inode delete leaves
// it behind — LookupDirIndex succeeds while the inode row is gone. A push
// for such a directory must still be acked at its max seq (ApplyEntries
// alone would drop the entries silently without advancing the hwm, and the
// source would retry forever).
TEST(PushEngineModule, StaleDirIndexWithoutInodeStillTrimsSourceLog) {
  PushHarness h;
  const InodeId parent = RootId();
  const std::string name = h.NameOwnedBy(parent, 1, "s");
  const InodeId dir = h.SeedDirAt(h.owner, parent, name, 600);
  const psw::Fingerprint fp = FingerprintOf(parent, name);
  // Simulate the post-replay state: dir-index row present, inode row gone.
  h.owner.vol->kv.Delete(InodeKey(parent, name));

  h.AppendAndSchedule(fp, dir, 2);
  h.sim.Run();

  EXPECT_EQ(h.SrcPending(fp, dir), 0u) << "obsolete entries must be trimmed";
  EXPECT_EQ(h.owner.stats.entries_applied, 0u);
  for (const kv::WalRecord& r : h.src.durable.wal.records()) {
    EXPECT_TRUE(r.applied);
  }
}

// Regression (counter split): owner-local applies never hit the network and
// must count as pushes_local, not pushes_sent.
TEST(PushEngineModule, LocalApplyCountsAsLocalPush) {
  PushHarness h;
  const InodeId parent = RootId();
  const std::string name = h.NameOwnedBy(parent, 0, "l");
  const InodeId dir = h.SeedDirAt(h.src, parent, name, 500);
  const psw::Fingerprint fp = FingerprintOf(parent, name);

  h.AppendAndSchedule(fp, dir, 4);
  h.sim.Run();

  EXPECT_EQ(h.src.stats.pushes_local, 1u);
  EXPECT_EQ(h.src.stats.pushes_sent, 0u);
  EXPECT_EQ(h.src.stats.push_failures, 0u);
  EXPECT_EQ(h.src.stats.entries_applied, 4u);
  EXPECT_EQ(h.SrcPending(fp, dir), 0u);
  auto value = h.src.vol->kv.Get(InodeKey(parent, name));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(Attr::Decode(*value).size, 4u);
}

// ---------------------------------------------------------------------------
// moved_fp rebind (§5.2 rename race)
// ---------------------------------------------------------------------------

// An entry that commits under a directory's old fingerprint in the rename
// race window must be observable at the new owner afterwards. The old owner
// holds a moved tombstone; the push returns kMoved and the source re-keys
// the change-log under the new fingerprint (here owned by the source itself,
// so the rebound push is an owner-local apply) instead of trimming it.
TEST(PushEngineModule, RenameRacedPushRebindsToNewOwner) {
  PushHarness h;
  const InodeId parent = RootId();
  const std::string old_name = h.NameOwnedBy(parent, 1, "mvo");
  const std::string new_name = h.NameOwnedBy(parent, 0, "mvn");
  const psw::Fingerprint old_fp = FingerprintOf(parent, old_name);
  const psw::Fingerprint new_fp = FingerprintOf(parent, new_name);
  // The directory lives at its post-rename location (owned by node 0); the
  // old owner only has the tombstone left behind by the rename's source leg.
  const InodeId dir = h.SeedDirAt(h.src, parent, new_name, 800);
  ServerVolatile::MovedDir tomb;
  tomb.old_fp = old_fp;
  tomb.new_fp = new_fp;
  tomb.new_owner = 0;
  tomb.epoch = 7;
  tomb.installed_at = h.sim.Now();
  h.owner.vol->InstallMovedTombstone(dir, tomb);

  h.AppendAndSchedule(old_fp, dir, 3);  // the raced commits, keyed to old_fp
  h.sim.Run();

  EXPECT_EQ(h.src.stats.pushes_rebound, 1u);
  EXPECT_EQ(h.src.stats.entries_rebound, 3u);
  EXPECT_EQ(h.owner.stats.entries_applied, 0u);
  // The rebound log drained through the new owner (the source itself).
  EXPECT_EQ(h.src.stats.pushes_local, 1u);
  EXPECT_EQ(h.src.stats.entries_applied, 3u);
  EXPECT_EQ(h.SrcPending(old_fp, dir), 0u);
  EXPECT_EQ(h.SrcPending(new_fp, dir), 0u);
  auto value = h.src.vol->kv.Get(InodeKey(parent, new_name));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(Attr::Decode(*value).size, 3u);
  // Only the op-commit records: the owner-local apply also appended
  // EntryApply records, which never carry the remote-applied mark.
  for (const kv::WalRecord& r : h.src.durable.wal.records()) {
    if (r.type == 1) {
      EXPECT_TRUE(r.applied);
    }
  }
}

// A/B companion: with the tombstone lookup disabled (moved_rebind off — the
// pre-tombstone protocol), the same race trims the committed entries as if
// the directory had been removed, and they never reach the new location.
// This is exactly the data-loss window the tombstone closes.
TEST(PushEngineModule, RenameRacedPushTrimsWhenRebindDisabled) {
  PushHarness h;
  h.src.config.moved_rebind = false;
  h.owner.config.moved_rebind = false;
  const InodeId parent = RootId();
  const std::string old_name = h.NameOwnedBy(parent, 1, "dvo");
  const std::string new_name = h.NameOwnedBy(parent, 0, "dvn");
  const psw::Fingerprint old_fp = FingerprintOf(parent, old_name);
  const InodeId dir = h.SeedDirAt(h.src, parent, new_name, 801);
  ServerVolatile::MovedDir tomb;
  tomb.old_fp = old_fp;
  tomb.new_fp = FingerprintOf(parent, new_name);
  tomb.new_owner = 0;
  tomb.epoch = 7;
  tomb.installed_at = h.sim.Now();
  h.owner.vol->InstallMovedTombstone(dir, tomb);

  h.AppendAndSchedule(old_fp, dir, 3);
  h.sim.Run();

  EXPECT_EQ(h.src.stats.pushes_rebound, 0u);
  EXPECT_EQ(h.src.stats.entries_rebound, 0u);
  EXPECT_EQ(h.SrcPending(old_fp, dir), 0u) << "trimmed as obsolete";
  EXPECT_EQ(h.src.stats.entries_applied + h.owner.stats.entries_applied, 0u)
      << "the committed creates are lost — nothing ever applied";
  auto value = h.src.vol->kv.Get(InodeKey(parent, new_name));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(Attr::Decode(*value).size, 0u);
}

// The kMoved verdict's acked_seq carries the prefix the old owner applied
// before the rename (it migrated with the directory's entry list): the
// source trims that prefix and rebinds only the unapplied suffix, so nothing
// is double-counted at the new owner.
TEST(PushEngineModule, RebindTrimsPreRenameAppliedPrefix) {
  PushHarness h;
  const InodeId parent = RootId();
  const std::string old_name = h.NameOwnedBy(parent, 1, "pfo");
  const std::string new_name = h.NameOwnedBy(parent, 0, "pfn");
  const psw::Fingerprint old_fp = FingerprintOf(parent, old_name);
  const psw::Fingerprint new_fp = FingerprintOf(parent, new_name);
  const InodeId dir = h.SeedDirAt(h.src, parent, new_name, 802);
  ServerVolatile::MovedDir tomb;
  tomb.old_fp = old_fp;
  tomb.new_fp = new_fp;
  tomb.new_owner = 0;
  tomb.epoch = 9;
  tomb.installed_at = h.sim.Now();
  // The old owner had applied seqs 1-2 before the rename; the tombstone
  // took over those marks (the live hwm rows are erased at install).
  tomb.applied = {{0u, 2u}};
  h.owner.vol->InstallMovedTombstone(dir, tomb);

  h.AppendAndSchedule(old_fp, dir, 5);  // seqs 1..5 pending at the source
  h.sim.Run();

  EXPECT_EQ(h.src.stats.entries_rebound, 3u) << "only the unapplied suffix";
  EXPECT_EQ(h.src.stats.entries_applied, 3u);
  EXPECT_EQ(h.SrcPending(old_fp, dir), 0u);
  EXPECT_EQ(h.SrcPending(new_fp, dir), 0u);
  auto value = h.src.vol->kv.Get(InodeKey(parent, new_name));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(Attr::Decode(*value).size, 3u);
  for (const kv::WalRecord& r : h.src.durable.wal.records()) {
    if (r.type == 1) {
      EXPECT_TRUE(r.applied);  // the trimmed prefix was marked applied too
    }
  }
}

// Tombstones expire after moved_tombstone_ttl (the rebind retention
// horizon): a push arriving later degrades to the removed-directory trim.
TEST(PushEngineModule, ExpiredTombstoneDegradesToRemovedTrim) {
  PushHarness h;
  h.owner.config.moved_tombstone_ttl = sim::Microseconds(10);
  const InodeId parent = RootId();
  const std::string old_name = h.NameOwnedBy(parent, 1, "tto");
  const std::string new_name = h.NameOwnedBy(parent, 0, "ttn");
  const psw::Fingerprint old_fp = FingerprintOf(parent, old_name);
  const InodeId dir = h.SeedDirAt(h.src, parent, new_name, 803);
  ServerVolatile::MovedDir tomb;
  tomb.old_fp = old_fp;
  tomb.new_fp = FingerprintOf(parent, new_name);
  tomb.new_owner = 0;
  tomb.epoch = 3;
  tomb.installed_at = h.sim.Now();
  h.owner.vol->InstallMovedTombstone(dir, tomb);

  // The push fires after the idle timeout (300us), far past the 10us TTL.
  h.AppendAndSchedule(old_fp, dir, 2);
  h.sim.Run();

  EXPECT_EQ(h.src.stats.pushes_rebound, 0u);
  EXPECT_EQ(h.SrcPending(old_fp, dir), 0u) << "trimmed: tombstone expired";
  EXPECT_TRUE(h.owner.vol->moved_dirs.empty()) << "lazy expiry erased it";
}

// The install-side epoch check: a replayed commit of an EARLIER rename must
// not clobber the tombstone of a later one — otherwise a raced log would be
// re-keyed onto the superseded location of the first rename.
TEST(PushEngineModule, TombstoneInstallKeepsNewestEpoch) {
  PushHarness h;
  InodeId dir;
  dir.w[0] = 804;
  dir.w[3] = 2;
  ServerVolatile::MovedDir second;
  second.new_fp = 222;
  second.new_owner = 0;
  second.epoch = 20;
  second.installed_at = h.sim.Now();
  h.owner.vol->InstallMovedTombstone(dir, second);
  ServerVolatile::MovedDir first;  // replayed earlier rename
  first.new_fp = 111;
  first.new_owner = 1;
  first.epoch = 10;
  first.installed_at = h.sim.Now();
  h.owner.vol->InstallMovedTombstone(dir, first);

  const ServerVolatile::MovedDir* tomb = h.owner.vol->FindMovedTombstone(
      dir, h.sim.Now(), h.owner.config.moved_tombstone_ttl);
  ASSERT_NE(tomb, nullptr);
  EXPECT_EQ(tomb->new_fp, 222u) << "the second rename's target survives";
  EXPECT_EQ(tomb->epoch, 20u);
}

// Aggregation-path rebind: entries collected for a moved directory during an
// old-fingerprint aggregation become AggDone moved rows (not acks), and each
// source re-keys its log toward the new owner — agg_rebinds advances instead
// of the entries being trimmed.
TEST(PushEngineModule, AggregationMovedRowRebindsCollectedEntries) {
  PushHarness h;
  const InodeId parent = RootId();
  const std::string old_name = h.NameOwnedBy(parent, 1, "ago");
  const std::string new_name = h.NameOwnedBy(parent, 0, "agn");
  const psw::Fingerprint old_fp = FingerprintOf(parent, old_name);
  const psw::Fingerprint new_fp = FingerprintOf(parent, new_name);
  const InodeId dir = h.SeedDirAt(h.src, parent, new_name, 805);
  ServerVolatile::MovedDir tomb;
  tomb.old_fp = old_fp;
  tomb.new_fp = new_fp;
  tomb.new_owner = 0;
  tomb.epoch = 11;
  tomb.installed_at = h.sim.Now();
  h.owner.vol->InstallMovedTombstone(dir, tomb);

  // Pending entries at the source; no push scheduled — the owner's
  // aggregation collects them instead.
  ChangeLog& clog = h.src.vol->GetChangeLog(old_fp, dir);
  for (int i = 0; i < 4; ++i) {
    const uint64_t seq = clog.last_appended_seq() + 1;
    ChangeLogEntry e = MakeEntry(seq, "e" + std::to_string(seq),
                                 OpType::kCreate, 100 + static_cast<int>(seq));
    e.wal_lsn = h.src.durable.wal.Append(1, "op");
    clog.Restore(std::move(e));
  }
  sim::Spawn(h.owner.agg->GateAndAggregate(h.owner.vol, old_fp));
  h.sim.Run();

  EXPECT_EQ(h.src.stats.agg_rebinds, 1u);
  EXPECT_EQ(h.src.stats.agg_entries_rebound, 4u);
  EXPECT_EQ(h.src.stats.pushes_rebound, 0u);
  EXPECT_EQ(h.owner.stats.entries_applied, 0u);
  EXPECT_EQ(h.SrcPending(old_fp, dir), 0u);
  EXPECT_EQ(h.SrcPending(new_fp, dir), 0u) << "rebound then drained locally";
  EXPECT_EQ(h.src.stats.entries_applied, 4u);
  auto value = h.src.vol->kv.Get(InodeKey(parent, new_name));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(Attr::Decode(*value).size, 4u);
  for (const kv::WalRecord& r : h.src.durable.wal.records()) {
    if (r.type == 1) {
      EXPECT_TRUE(r.applied);
    }
  }
}

// ---------------------------------------------------------------------------
// OwnerQuietTimer (§5.3 owner-side proactive aggregation)
// ---------------------------------------------------------------------------

// Quiet-period expiry triggers exactly one GateAndAggregate, and re-arming
// is suppressed while the timer is armed (then works again afterwards).
TEST(PushEngineModule, OwnerQuietTimerFiresOnceAndRearmsAfterCompletion) {
  ModuleHarness h;
  const psw::Fingerprint fp = 91;
  h.vol->ShardFor(fp).last_push[fp] = h.sim.Now();
  h.push->ArmOwnerQuietTimer(h.vol, fp);
  h.push->ArmOwnerQuietTimer(h.vol, fp);  // suppressed: already armed
  h.push->ArmOwnerQuietTimer(h.vol, fp);
  h.sim.Run();

  EXPECT_EQ(h.stats.aggregations, 1u);
  EXPECT_TRUE(h.vol->ShardFor(fp).quiet_timer_armed.empty());

  // The timer completed: arming again schedules a fresh aggregation.
  h.push->ArmOwnerQuietTimer(h.vol, fp);
  h.sim.Run();
  EXPECT_EQ(h.stats.aggregations, 2u);
  EXPECT_TRUE(h.vol->ShardFor(fp).quiet_timer_armed.empty());
}

// A push arriving mid-wait postpones the quiet-period aggregation (the timer
// loops) — still exactly one aggregation once the pushes stop.
TEST(PushEngineModule, OwnerQuietTimerPostponesWhilePushesArrive) {
  ModuleHarness h;
  const psw::Fingerprint fp = 92;
  h.vol->ShardFor(fp).last_push[fp] = h.sim.Now();
  h.push->ArmOwnerQuietTimer(h.vol, fp);
  // Halfway through the quiet period another push lands.
  h.sim.ScheduleAfter(h.config.owner_quiet_period / 2, [&h, fp] {
    h.vol->ShardFor(fp).last_push[fp] = h.sim.Now();
    h.push->ArmOwnerQuietTimer(h.vol, fp);  // suppressed, timer keeps looping
  });
  h.sim.Run();

  EXPECT_EQ(h.stats.aggregations, 1u);
  EXPECT_TRUE(h.vol->ShardFor(fp).quiet_timer_armed.empty());
}

// A crash (v->dead) mid-wait must leak no timer state: no aggregation runs
// and the armed marker is unwound.
TEST(PushEngineModule, OwnerQuietTimerCrashMidWaitLeaksNoState) {
  ModuleHarness h;
  const psw::Fingerprint fp = 93;
  h.vol->ShardFor(fp).last_push[fp] = h.sim.Now();
  h.push->ArmOwnerQuietTimer(h.vol, fp);
  h.sim.ScheduleAfter(h.config.owner_quiet_period / 2,
                      [&h] { h.vol->dead = true; });
  h.sim.Run();

  EXPECT_EQ(h.stats.aggregations, 0u);
  EXPECT_TRUE(h.vol->ShardFor(fp).quiet_timer_armed.empty());
}

// §5.3 consolidated attribute update: N pending entries cost one attribute
// write, and the directory's size/mtime reflect the whole batch.
TEST(AggregationModule, ApplyEntriesCompactsAttributeUpdate) {
  ModuleHarness h;
  const InodeId parent = RootId();
  const InodeId dir = h.SeedDir(parent, "docs", /*tag=*/77);

  std::vector<ChangeLogEntry> entries;
  for (uint64_t s = 1; s <= 5; ++s) {
    entries.push_back(
        MakeEntry(s, "f" + std::to_string(s), OpType::kCreate, 100 + s));
  }
  sim::Spawn(h.agg->ApplyEntries(h.vol, dir, /*src=*/1,
                                 FingerprintOf(parent, "docs"), entries, ""));
  h.sim.Run();

  Attr attr = h.ReadAttr(parent, "docs");
  EXPECT_EQ(attr.size, 5u);
  EXPECT_EQ(attr.mtime, 105);
  EXPECT_EQ(h.stats.entries_applied, 5u);
  EXPECT_EQ(h.vol->kv.CountPrefix(EntryPrefix(dir)), 5u);
  // The hwm advanced to the batch's tail.
  EXPECT_EQ((h.vol->hwm[{dir, 1u, FingerprintOf(parent, "docs")}]), 5u);
}

TEST(AggregationModule, ApplyEntriesDeduplicatesByHighWaterMark) {
  ModuleHarness h;
  const InodeId parent = RootId();
  const InodeId dir = h.SeedDir(parent, "docs", /*tag=*/78);

  std::vector<ChangeLogEntry> entries;
  for (uint64_t s = 1; s <= 3; ++s) {
    entries.push_back(
        MakeEntry(s, "f" + std::to_string(s), OpType::kCreate, 100 + s));
  }
  sim::Spawn(h.agg->ApplyEntries(h.vol, dir, 1,
                                 FingerprintOf(parent, "docs"), entries, ""));
  h.sim.Run();
  // Replaying the same batch (a duplicated push) applies nothing new.
  sim::Spawn(h.agg->ApplyEntries(h.vol, dir, 1,
                                 FingerprintOf(parent, "docs"), entries, ""));
  h.sim.Run();

  EXPECT_EQ(h.stats.entries_applied, 3u);
  EXPECT_EQ(h.stats.entries_deduped, 3u);
  EXPECT_EQ(h.ReadAttr(parent, "docs").size, 3u);
}

TEST(AggregationModule, ApplyEntriesStopsAtMidBatchSequenceGap) {
  ModuleHarness h;
  const InodeId parent = RootId();
  const InodeId dir = h.SeedDir(parent, "docs", /*tag=*/79);

  // A gap INSIDE a batch (seq 3 missing) means later entries of this very
  // batch are out of FIFO order: apply the contiguous prefix only.
  std::vector<ChangeLogEntry> entries;
  entries.push_back(MakeEntry(1, "a", OpType::kCreate, 101));
  entries.push_back(MakeEntry(2, "b", OpType::kCreate, 102));
  entries.push_back(MakeEntry(4, "d", OpType::kCreate, 104));
  sim::Spawn(h.agg->ApplyEntries(h.vol, dir, 1,
                                 FingerprintOf(parent, "docs"), entries, ""));
  h.sim.Run();

  EXPECT_EQ(h.stats.entries_applied, 2u);
  EXPECT_EQ(h.ReadAttr(parent, "docs").size, 2u);
  EXPECT_EQ(h.vol->kv.CountPrefix(EntryPrefix(dir)), 2u);
  EXPECT_EQ((h.vol->hwm[{dir, 1u, FingerprintOf(parent, "docs")}]), 2u);
}

// Resolved-prefix bridge (moved_fp rebind support): a batch always starts
// at the source log's front, and fronts only advance through resolution —
// so seqs below the batch's first entry are settled (acked here, migrated
// with a renamed directory's entry list, or trimmed as obsolete) and must
// not be waited for. A rebound or straggler batch that resumes above marks
// this lane never saw applies instead of gap-stalling forever.
TEST(AggregationModule, ApplyEntriesBridgesResolvedPrefixBelowBatchFront) {
  ModuleHarness h;
  const InodeId parent = RootId();
  const InodeId dir = h.SeedDir(parent, "docs", /*tag=*/81);

  std::vector<ChangeLogEntry> entries;
  entries.push_back(MakeEntry(3, "c", OpType::kCreate, 103));
  entries.push_back(MakeEntry(4, "d", OpType::kCreate, 104));
  sim::Spawn(h.agg->ApplyEntries(h.vol, dir, 1,
                                 FingerprintOf(parent, "docs"), entries, ""));
  h.sim.Run();

  EXPECT_EQ(h.stats.entries_applied, 2u);
  EXPECT_EQ(h.ReadAttr(parent, "docs").size, 2u);
  EXPECT_EQ((h.vol->hwm[{dir, 1u, FingerprintOf(parent, "docs")}]), 4u);
}

// GateAndAggregate on the owner collects the local change-log, applies it,
// drains the backlog, and marks the WAL records applied (§5.2.2 steps 8-10).
TEST(AggregationModule, GateAndAggregateDrainsLocalChangeLog) {
  ModuleHarness h;
  const InodeId parent = RootId();
  const InodeId dir = h.SeedDir(parent, "docs", /*tag=*/80);
  const psw::Fingerprint fp = FingerprintOf(parent, "docs");

  ChangeLog& clog = h.vol->GetChangeLog(fp, dir);
  for (uint64_t s = 1; s <= 4; ++s) {
    ChangeLogEntry e =
        MakeEntry(s, "f" + std::to_string(s), OpType::kCreate, 200 + s);
    e.wal_lsn = h.durable.wal.Append(1, "op" + std::to_string(s));
    clog.Restore(std::move(e));
  }

  sim::Spawn(h.agg->GateAndAggregate(h.vol, fp));
  h.sim.Run();

  EXPECT_EQ(h.stats.aggregations, 1u);
  EXPECT_EQ(h.stats.entries_applied, 4u);
  EXPECT_TRUE(clog.empty());
  EXPECT_EQ(h.ReadAttr(parent, "docs").size, 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(h.durable.wal.records()[i].applied) << "lsn " << i;
  }
  // The read path's freshness check sees the completed aggregation.
  EXPECT_EQ(h.vol->ShardFor(fp).last_agg_complete.count(fp), 1u);
}

// ROADMAP fault path: a responder session whose initiator goes silent (it
// crashed mid-aggregation) is reaped by the watchdog after
// responder_session_timeout, releasing the shared change-log lock so later
// writers are not blocked forever.
TEST(AggregationModule, ResponderWatchdogReleasesAbandonedSession) {
  ModuleHarness h;
  h.config.responder_session_timeout = sim::Milliseconds(5);
  const psw::Fingerprint fp = 77;

  // Fake initiator: acks the AggEntries reply but never sends AggDone.
  net::RpcEndpoint initiator(&h.sim, &h.net);
  initiator.SetRequestHandler([&initiator](net::Packet p) {
    initiator.Respond(p, net::MakeMsg<Ack>());
  });

  auto collect = std::make_shared<AggCollect>();
  collect->fp = fp;
  collect->initiator_server = 9;
  collect->initiator_node = initiator.id();
  collect->agg_seq = 1;
  net::Packet p;
  p.src = initiator.id();
  p.dst = h.rpc.id();
  p.body = collect;
  sim::Spawn(h.agg->HandleAggCollect(std::move(p), h.vol));
  h.sim.Run();

  // Watchdog expired: session gone, and the change-log lock is free again —
  // an exclusive acquire (what an upsert takes) completes immediately.
  EXPECT_TRUE(h.vol->ShardFor(fp).agg_sessions.empty());
  bool acquired = false;
  sim::Spawn([](ModuleHarness* hh, psw::Fingerprint f,
                bool* out) -> sim::Task<void> {
    auto lock = co_await hh->vol->ShardFor(f).changelog_locks.AcquireExclusive(FpKey(f));
    *out = true;
  }(&h, fp, &acquired));
  h.sim.Run();
  EXPECT_TRUE(acquired);
}

// §5.2 orphaned-loop prevention: moving a directory under one of its own
// descendants must be rejected (kCrossDevice) and all prepare locks undone.
TEST(RenameCoordinatorModule, RejectsOrphanedLoop) {
  ModuleHarness h;
  InodeId a;
  a.w[0] = 42;
  a.w[3] = 2;
  const InodeId d = h.SeedDir(a, "d", /*tag=*/77);

  PathRef src;
  src.pid = a;
  src.name = "d";
  src.parent_fp = FingerprintOf(RootId(), "a");
  src.ancestors = {AncestorRef{RootId(), 0}, AncestorRef{a, 0}};

  PathRef dst;  // destination parent chain passes through d itself
  dst.pid = d;
  dst.name = "sub";
  dst.parent_fp = FingerprintOf(a, "d");
  dst.ancestors = {AncestorRef{RootId(), 0}, AncestorRef{a, 0},
                   AncestorRef{d, 0}};

  EXPECT_EQ(h.Rename(src, dst), StatusCode::kCrossDevice);
  // Both legs aborted: no lingering transaction locks, nothing moved.
  EXPECT_TRUE(h.vol->txn_locks.empty());
  EXPECT_TRUE(h.vol->kv.Contains(InodeKey(a, "d")));
  EXPECT_FALSE(h.vol->kv.Contains(InodeKey(d, "sub")));
  EXPECT_EQ(h.publishes, 0);
}

TEST(RenameCoordinatorModule, RejectsMissingSource) {
  ModuleHarness h;
  InodeId a;
  a.w[0] = 43;
  a.w[3] = 2;
  InodeId b;
  b.w[0] = 44;
  b.w[3] = 2;

  PathRef src;
  src.pid = a;
  src.name = "ghost";
  src.ancestors = {AncestorRef{RootId(), 0}};
  PathRef dst;
  dst.pid = b;
  dst.name = "x";
  dst.ancestors = {AncestorRef{RootId(), 0}};

  EXPECT_EQ(h.Rename(src, dst), StatusCode::kNotFound);
  EXPECT_TRUE(h.vol->txn_locks.empty());
}

// A legal directory move commits both legs: source inode deleted,
// destination inode installed (with its dir-index), and the deferred parent
// updates handed to the publisher.
TEST(RenameCoordinatorModule, CommitsLegalDirectoryMove) {
  ModuleHarness h;
  InodeId a;
  a.w[0] = 45;
  a.w[3] = 2;
  InodeId b;
  b.w[0] = 46;
  b.w[3] = 2;
  const InodeId d = h.SeedDir(a, "d", /*tag=*/90);

  PathRef src;
  src.pid = a;
  src.name = "d";
  src.parent_fp = FingerprintOf(RootId(), "a");
  src.ancestors = {AncestorRef{RootId(), 0}, AncestorRef{a, 0}};
  PathRef dst;
  dst.pid = b;
  dst.name = "moved";
  dst.parent_fp = FingerprintOf(RootId(), "b");
  dst.ancestors = {AncestorRef{RootId(), 0}, AncestorRef{b, 0}};

  EXPECT_EQ(h.Rename(src, dst), StatusCode::kOk);
  EXPECT_FALSE(h.vol->kv.Contains(InodeKey(a, "d")));
  EXPECT_TRUE(h.vol->kv.Contains(InodeKey(b, "moved")));
  Attr moved = h.ReadAttr(b, "moved");
  EXPECT_EQ(moved.id, d);
  EXPECT_TRUE(moved.is_dir());
  // The dir-index row followed the inode to its new key.
  std::string ikey;
  psw::Fingerprint fp = 0;
  ASSERT_TRUE(h.vol->LookupDirIndex(d, &ikey, &fp));
  EXPECT_EQ(ikey, InodeKey(b, "moved"));
  // One deferred parent update per leg.
  EXPECT_EQ(h.publishes, 2);
  EXPECT_TRUE(h.vol->txn_locks.empty());
}

}  // namespace
}  // namespace switchfs::core
