// Unit tests for the protocol modules extracted from the SwitchServer
// monolith (aggregation, push engine, rename coordinator): each runs against
// a bare ServerContext + ServerVolatile on a single simulated node — no
// Cluster, no SwitchFsClient — exercising the module boundary directly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/aggregation.h"
#include "src/core/push_engine.h"
#include "src/core/rename_coordinator.h"
#include "src/core/schema.h"
#include "src/net/network.h"
#include "src/tracker/owner_tracker.h"

namespace switchfs::core {
namespace {

class SingleNodeCluster : public ClusterContext {
 public:
  explicit SingleNodeCluster(net::NodeId node) : node_(node) {
    ring_.AddServer(0);
  }
  const HashRing& ring() const override { return ring_; }
  net::NodeId ServerNode(uint32_t) const override { return node_; }
  uint32_t ServerCount() const override { return 1; }

 private:
  HashRing ring_;
  net::NodeId node_;
};

// One server's modules over a bare context. Implements UpdatePublisher with
// a counter so commit paths run without the dirty-set insert machinery.
class ModuleHarness : public UpdatePublisher {
 public:
  ModuleHarness()
      : net(&sim, &costs, /*seed=*/7),
        sw(costs.plain_switch_delay),
        cpu(&sim, config.cores),
        rpc(&sim, &net),
        vol(std::make_shared<ServerVolatile>(&sim)) {
    net.SetSwitch(&sw);
    cluster = std::make_unique<SingleNodeCluster>(rpc.id());
    sw.SetServerGroup({rpc.id()});
    ctx = ServerContext{&sim,    &net, cluster.get(), &durable, &costs,
                        &config, &cpu, &rpc,          &stats,   &tracker_impl};
    agg = std::make_unique<Aggregation>(ctx);
    push = std::make_unique<PushEngine>(ctx, *agg);
    rename = std::make_unique<RenameCoordinator>(ctx, *agg, *push, *this);
    rpc.SetCpu(&cpu);
    rpc.SetRequestHandler([this](net::Packet p) { OnRequest(std::move(p)); });
    rpc.SetRawHandler([this](net::Packet p) { OnRaw(std::move(p)); });
  }

  sim::Task<void> PublishUpdate(const net::Packet* client_req, VolPtr v,
                                psw::Fingerprint, const InodeId&,
                                net::MsgPtr client_resp) override {
    (void)v;
    publishes++;
    if (client_req != nullptr) {
      rpc.Respond(*client_req, client_resp);
    }
    co_return;
  }

  // The rename module's server-side dependencies, minus SwitchServer.
  void OnRequest(net::Packet p) {
    VolPtr v = vol;
    switch (p.body->type) {
      case MetaReq::kType:
        sim::Spawn(rename->HandleRename(std::move(p), std::move(v)));
        break;
      case RenamePrepare::kType:
        sim::Spawn(rename->HandleRenamePrepare(std::move(p), std::move(v)));
        break;
      case RenameCommit::kType:
        sim::Spawn(rename->HandleRenameCommit(std::move(p), std::move(v)));
        break;
      case AggregateReq::kType:
        sim::Spawn(rename->HandleAggregateReq(std::move(p), std::move(v)));
        break;
      case AggEntries::kType:
        agg->HandleAggEntries(std::move(p), v);
        break;
      case LookupReq::kType: {
        const auto* req = static_cast<const LookupReq*>(p.body.get());
        auto resp = std::make_shared<LookupResp>();
        auto value = v->kv.Get(InodeKey(req->pid, req->name));
        if (value.has_value()) {
          resp->status = StatusCode::kOk;
          resp->attr = Attr::Decode(*value);
          resp->read_at = sim.Now();
        } else {
          resp->status = StatusCode::kNotFound;
        }
        rpc.Respond(p, resp);
        break;
      }
      default:
        break;
    }
  }

  void OnRaw(net::Packet p) {
    if (p.body == nullptr) {
      return;
    }
    if (p.body->type == AggDone::kType) {
      agg->HandleAggDone(*static_cast<const AggDone*>(p.body.get()), vol);
    }
  }

  // Seeds a directory inode at (pid, name) plus its dir-index row; returns
  // the new directory's id.
  InodeId SeedDir(const InodeId& pid, const std::string& name, uint64_t tag) {
    InodeId id;
    id.w[0] = tag;
    id.w[3] = 2;
    Attr attr;
    attr.id = id;
    attr.type = FileType::kDirectory;
    attr.mode = 0755;
    const std::string ikey = InodeKey(pid, name);
    vol->kv.Put(ikey, attr.Encode());
    vol->kv.Put(DirIndexKey(id),
                EncodeDirIndex(ikey, FingerprintOf(pid, name)));
    return id;
  }

  Attr ReadAttr(const InodeId& pid, const std::string& name) {
    auto value = vol->kv.Get(InodeKey(pid, name));
    EXPECT_TRUE(value.has_value());
    return value.has_value() ? Attr::Decode(*value) : Attr{};
  }

  StatusCode Rename(const PathRef& src, const PathRef& dst) {
    auto req = std::make_shared<MetaReq>();
    req->op = OpType::kRename;
    req->ref = src;
    req->ref2 = dst;
    StatusCode out = StatusCode::kInternal;
    net::RpcEndpoint client(&sim, &net);
    sim::Spawn([](net::RpcEndpoint* cli, net::NodeId server, net::MsgPtr msg,
                  StatusCode* o) -> sim::Task<void> {
      net::CallOptions opts;
      opts.timeout = sim::Milliseconds(100);
      opts.max_attempts = 2;
      auto r = co_await cli->Call(server, msg, opts);
      if (r.ok()) {
        if (const auto* resp = net::MsgAs<MetaResp>(*r)) {
          *o = resp->status;
        }
      }
    }(&client, rpc.id(), req, &out));
    sim.Run();
    return out;
  }

  sim::Simulator sim;
  sim::CostModel costs;
  net::Network net;
  net::PlainSwitch sw;
  ServerConfig config;
  // Simplest tracker over the bare context: scattered state lives in the
  // harness's own ServerVolatile, no extra nodes involved.
  tracker::OwnerTracker tracker_impl;
  DurableState durable;
  sim::CpuPool cpu;
  net::RpcEndpoint rpc;
  ServerStats stats;
  std::unique_ptr<SingleNodeCluster> cluster;
  ServerContext ctx;
  VolPtr vol;
  std::unique_ptr<Aggregation> agg;
  std::unique_ptr<PushEngine> push;
  std::unique_ptr<RenameCoordinator> rename;
  int publishes = 0;
};

ChangeLogEntry MakeEntry(uint64_t seq, const std::string& name, OpType op,
                         int64_t ts) {
  ChangeLogEntry e;
  e.seq = seq;
  e.timestamp = ts;
  e.op = op;
  e.name = name;
  e.entry_type = op == OpType::kMkdir ? FileType::kDirectory : FileType::kFile;
  e.size_delta = op == OpType::kCreate || op == OpType::kMkdir ? 1 : -1;
  return e;
}

// §5.3 consolidated attribute update: N pending entries cost one attribute
// write, and the directory's size/mtime reflect the whole batch.
TEST(AggregationModule, ApplyEntriesCompactsAttributeUpdate) {
  ModuleHarness h;
  const InodeId parent = RootId();
  const InodeId dir = h.SeedDir(parent, "docs", /*tag=*/77);

  std::vector<ChangeLogEntry> entries;
  for (uint64_t s = 1; s <= 5; ++s) {
    entries.push_back(
        MakeEntry(s, "f" + std::to_string(s), OpType::kCreate, 100 + s));
  }
  sim::Spawn(h.agg->ApplyEntries(h.vol, dir, /*src=*/1, entries, ""));
  h.sim.Run();

  Attr attr = h.ReadAttr(parent, "docs");
  EXPECT_EQ(attr.size, 5u);
  EXPECT_EQ(attr.mtime, 105);
  EXPECT_EQ(h.stats.entries_applied, 5u);
  EXPECT_EQ(h.vol->kv.CountPrefix(EntryPrefix(dir)), 5u);
  // The hwm advanced to the batch's tail.
  EXPECT_EQ((h.vol->hwm[{dir, 1u}]), 5u);
}

TEST(AggregationModule, ApplyEntriesDeduplicatesByHighWaterMark) {
  ModuleHarness h;
  const InodeId parent = RootId();
  const InodeId dir = h.SeedDir(parent, "docs", /*tag=*/78);

  std::vector<ChangeLogEntry> entries;
  for (uint64_t s = 1; s <= 3; ++s) {
    entries.push_back(
        MakeEntry(s, "f" + std::to_string(s), OpType::kCreate, 100 + s));
  }
  sim::Spawn(h.agg->ApplyEntries(h.vol, dir, 1, entries, ""));
  h.sim.Run();
  // Replaying the same batch (a duplicated push) applies nothing new.
  sim::Spawn(h.agg->ApplyEntries(h.vol, dir, 1, entries, ""));
  h.sim.Run();

  EXPECT_EQ(h.stats.entries_applied, 3u);
  EXPECT_EQ(h.stats.entries_deduped, 3u);
  EXPECT_EQ(h.ReadAttr(parent, "docs").size, 3u);
}

TEST(AggregationModule, ApplyEntriesStopsAtSequenceGap) {
  ModuleHarness h;
  const InodeId parent = RootId();
  const InodeId dir = h.SeedDir(parent, "docs", /*tag=*/79);

  // Seqs 2-3 while the hwm expects 1: an earlier push is still in flight, so
  // nothing may be applied (FIFO per source).
  std::vector<ChangeLogEntry> entries;
  entries.push_back(MakeEntry(2, "b", OpType::kCreate, 102));
  entries.push_back(MakeEntry(3, "c", OpType::kCreate, 103));
  sim::Spawn(h.agg->ApplyEntries(h.vol, dir, 1, entries, ""));
  h.sim.Run();

  EXPECT_EQ(h.stats.entries_applied, 0u);
  EXPECT_EQ(h.ReadAttr(parent, "docs").size, 0u);
  EXPECT_EQ(h.vol->kv.CountPrefix(EntryPrefix(dir)), 0u);
}

// GateAndAggregate on the owner collects the local change-log, applies it,
// drains the backlog, and marks the WAL records applied (§5.2.2 steps 8-10).
TEST(AggregationModule, GateAndAggregateDrainsLocalChangeLog) {
  ModuleHarness h;
  const InodeId parent = RootId();
  const InodeId dir = h.SeedDir(parent, "docs", /*tag=*/80);
  const psw::Fingerprint fp = FingerprintOf(parent, "docs");

  ChangeLog& clog = h.vol->GetChangeLog(fp, dir);
  for (uint64_t s = 1; s <= 4; ++s) {
    ChangeLogEntry e =
        MakeEntry(s, "f" + std::to_string(s), OpType::kCreate, 200 + s);
    e.wal_lsn = h.durable.wal.Append(1, "op" + std::to_string(s));
    clog.Restore(std::move(e));
  }

  sim::Spawn(h.agg->GateAndAggregate(h.vol, fp));
  h.sim.Run();

  EXPECT_EQ(h.stats.aggregations, 1u);
  EXPECT_EQ(h.stats.entries_applied, 4u);
  EXPECT_TRUE(clog.empty());
  EXPECT_EQ(h.ReadAttr(parent, "docs").size, 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(h.durable.wal.records()[i].applied) << "lsn " << i;
  }
  // The read path's freshness check sees the completed aggregation.
  EXPECT_EQ(h.vol->last_agg_complete.count(fp), 1u);
}

// ROADMAP fault path: a responder session whose initiator goes silent (it
// crashed mid-aggregation) is reaped by the watchdog after
// responder_session_timeout, releasing the shared change-log lock so later
// writers are not blocked forever.
TEST(AggregationModule, ResponderWatchdogReleasesAbandonedSession) {
  ModuleHarness h;
  h.config.responder_session_timeout = sim::Milliseconds(5);
  const psw::Fingerprint fp = 77;

  // Fake initiator: acks the AggEntries reply but never sends AggDone.
  net::RpcEndpoint initiator(&h.sim, &h.net);
  initiator.SetRequestHandler([&initiator](net::Packet p) {
    initiator.Respond(p, net::MakeMsg<Ack>());
  });

  auto collect = std::make_shared<AggCollect>();
  collect->fp = fp;
  collect->initiator_server = 9;
  collect->initiator_node = initiator.id();
  collect->agg_seq = 1;
  net::Packet p;
  p.src = initiator.id();
  p.dst = h.rpc.id();
  p.body = collect;
  sim::Spawn(h.agg->HandleAggCollect(std::move(p), h.vol));
  h.sim.Run();

  // Watchdog expired: session gone, and the change-log lock is free again —
  // an exclusive acquire (what an upsert takes) completes immediately.
  EXPECT_TRUE(h.vol->agg_sessions.empty());
  bool acquired = false;
  sim::Spawn([](ModuleHarness* hh, psw::Fingerprint f,
                bool* out) -> sim::Task<void> {
    auto lock = co_await hh->vol->changelog_locks.AcquireExclusive(FpKey(f));
    *out = true;
  }(&h, fp, &acquired));
  h.sim.Run();
  EXPECT_TRUE(acquired);
}

// §5.2 orphaned-loop prevention: moving a directory under one of its own
// descendants must be rejected (kCrossDevice) and all prepare locks undone.
TEST(RenameCoordinatorModule, RejectsOrphanedLoop) {
  ModuleHarness h;
  InodeId a;
  a.w[0] = 42;
  a.w[3] = 2;
  const InodeId d = h.SeedDir(a, "d", /*tag=*/77);

  PathRef src;
  src.pid = a;
  src.name = "d";
  src.parent_fp = FingerprintOf(RootId(), "a");
  src.ancestors = {AncestorRef{RootId(), 0}, AncestorRef{a, 0}};

  PathRef dst;  // destination parent chain passes through d itself
  dst.pid = d;
  dst.name = "sub";
  dst.parent_fp = FingerprintOf(a, "d");
  dst.ancestors = {AncestorRef{RootId(), 0}, AncestorRef{a, 0},
                   AncestorRef{d, 0}};

  EXPECT_EQ(h.Rename(src, dst), StatusCode::kCrossDevice);
  // Both legs aborted: no lingering transaction locks, nothing moved.
  EXPECT_TRUE(h.vol->txn_locks.empty());
  EXPECT_TRUE(h.vol->kv.Contains(InodeKey(a, "d")));
  EXPECT_FALSE(h.vol->kv.Contains(InodeKey(d, "sub")));
  EXPECT_EQ(h.publishes, 0);
}

TEST(RenameCoordinatorModule, RejectsMissingSource) {
  ModuleHarness h;
  InodeId a;
  a.w[0] = 43;
  a.w[3] = 2;
  InodeId b;
  b.w[0] = 44;
  b.w[3] = 2;

  PathRef src;
  src.pid = a;
  src.name = "ghost";
  src.ancestors = {AncestorRef{RootId(), 0}};
  PathRef dst;
  dst.pid = b;
  dst.name = "x";
  dst.ancestors = {AncestorRef{RootId(), 0}};

  EXPECT_EQ(h.Rename(src, dst), StatusCode::kNotFound);
  EXPECT_TRUE(h.vol->txn_locks.empty());
}

// A legal directory move commits both legs: source inode deleted,
// destination inode installed (with its dir-index), and the deferred parent
// updates handed to the publisher.
TEST(RenameCoordinatorModule, CommitsLegalDirectoryMove) {
  ModuleHarness h;
  InodeId a;
  a.w[0] = 45;
  a.w[3] = 2;
  InodeId b;
  b.w[0] = 46;
  b.w[3] = 2;
  const InodeId d = h.SeedDir(a, "d", /*tag=*/90);

  PathRef src;
  src.pid = a;
  src.name = "d";
  src.parent_fp = FingerprintOf(RootId(), "a");
  src.ancestors = {AncestorRef{RootId(), 0}, AncestorRef{a, 0}};
  PathRef dst;
  dst.pid = b;
  dst.name = "moved";
  dst.parent_fp = FingerprintOf(RootId(), "b");
  dst.ancestors = {AncestorRef{RootId(), 0}, AncestorRef{b, 0}};

  EXPECT_EQ(h.Rename(src, dst), StatusCode::kOk);
  EXPECT_FALSE(h.vol->kv.Contains(InodeKey(a, "d")));
  EXPECT_TRUE(h.vol->kv.Contains(InodeKey(b, "moved")));
  Attr moved = h.ReadAttr(b, "moved");
  EXPECT_EQ(moved.id, d);
  EXPECT_TRUE(moved.is_dir());
  // The dir-index row followed the inode to its new key.
  std::string ikey;
  psw::Fingerprint fp = 0;
  ASSERT_TRUE(h.vol->LookupDirIndex(d, &ikey, &fp));
  EXPECT_EQ(ikey, InodeKey(b, "moved"));
  // One deferred parent update per leg.
  EXPECT_EQ(h.publishes, 2);
  EXPECT_TRUE(h.vol->txn_locks.empty());
}

}  // namespace
}  // namespace switchfs::core
