// Sharded-owner suite: the multi-shard storm property test (no dirent is
// lost or duplicated when creates/renames/unlinks land on different
// fingerprint-group shards of the same servers), duplicate-push idempotency
// (a retransmitted batch applies exactly once, across the owner's token
// era), per-shard dir-session caps, shard run-queue lane semantics, and the
// simulator's run-while-work-pending mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/core/aggregation.h"
#include "src/core/push_engine.h"
#include "src/core/schema.h"
#include "src/core/wal_records.h"
#include "src/net/network.h"
#include "src/sim/discipline.h"
#include "src/tracker/owner_tracker.h"
#include "tests/switchfs_test_util.h"

namespace switchfs::core {
namespace {

// ---------------------------------------------------------------------------
// Multi-shard storm property test
// ---------------------------------------------------------------------------

// Random create/rename/unlink traffic over directories spread across the
// fingerprint-group shards of a 4-server cluster, checked against a model
// map. Renames between directories exercise the sanctioned cross-shard
// handoff (prepare/commit legs on different shards); the discipline checker
// must see no cross-shard lock violation (meaningful in Debug builds where
// SFS_DISCIPLINE_CHECKS is on; trivially zero in Release).
TEST(MultiShardStorm, RandomOpsAcrossShardsMatchModel) {
  constexpr int kDirs = 6;
  constexpr int kOps = 110;
  for (uint64_t seed : {11u, 23u, 37u, 53u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    sim::DisciplineChecker::Reset();

    ClusterConfig cfg = SmallClusterConfig(4);
    cfg.server_template.shard_count = 4;
    FsHarness fs(cfg);

    std::map<int, std::set<std::string>> model;
    for (int d = 0; d < kDirs; ++d) {
      ASSERT_TRUE(fs.Mkdir("/s" + std::to_string(d)).ok());
      model[d] = {};
    }

    Rng rng(seed);
    int name_counter = 0;
    auto random_member = [&rng](const std::set<std::string>& s) {
      auto it = s.begin();
      std::advance(it, static_cast<long>(rng.NextBelow(s.size())));
      return *it;
    };

    for (int op = 0; op < kOps; ++op) {
      const int kind = static_cast<int>(rng.NextBelow(10));
      const int d = static_cast<int>(rng.NextBelow(kDirs));
      const std::string dir = "/s" + std::to_string(d);
      if (kind < 5 || model[d].empty()) {
        // Create (also the fallback when the picked dir is empty).
        const std::string name = "f" + std::to_string(name_counter++);
        ASSERT_TRUE(fs.Create(dir + "/" + name).ok()) << dir << "/" << name;
        model[d].insert(name);
      } else if (kind < 8) {
        // Rename into a (usually different) directory — fresh destination
        // name, so no overwrite semantics in play.
        const std::string src = random_member(model[d]);
        const int d2 = static_cast<int>(rng.NextBelow(kDirs));
        const std::string dst = "r" + std::to_string(name_counter++);
        ASSERT_TRUE(
            fs.Rename(dir + "/" + src, "/s" + std::to_string(d2) + "/" + dst)
                .ok())
            << dir << "/" << src;
        model[d].erase(src);
        model[d2].insert(dst);
      } else {
        const std::string victim = random_member(model[d]);
        ASSERT_TRUE(fs.Unlink(dir + "/" + victim).ok()) << dir << "/" << victim;
        model[d].erase(victim);
      }
    }

    // Drain parked shard-queue work (apply lanes, handoffs) before reading.
    fs.cluster.sim().RunWhileWorkPending();

    for (int d = 0; d < kDirs; ++d) {
      auto listing = fs.Readdir("/s" + std::to_string(d));
      ASSERT_TRUE(listing.ok()) << "/s" << d;
      std::set<std::string> got;
      for (const DirEntry& e : *listing) {
        EXPECT_TRUE(got.insert(e.name).second)
            << "duplicate dirent " << e.name << " in /s" << d;
      }
      EXPECT_EQ(got, model[d]) << "/s" << d;
    }
    EXPECT_EQ(sim::DisciplineChecker::violations_seen(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Duplicate-push idempotency (module level)
// ---------------------------------------------------------------------------

class SingleNodeCluster : public ClusterContext {
 public:
  explicit SingleNodeCluster(net::NodeId node) : node_(node) {
    ring_.AddServer(0);
  }
  const HashRing& ring() const override { return ring_; }
  net::NodeId ServerNode(uint32_t) const override { return node_; }
  uint32_t ServerCount() const override { return 1; }

 private:
  HashRing ring_;
  net::NodeId node_;
};

// One owner's aggregation + push modules over a bare context: the smallest
// stack that runs HandlePush's real apply path (shard apply lane, WAL
// records, token commit) against crafted PushReqs.
class PushOwnerHarness {
 public:
  PushOwnerHarness()
      : net(&sim, &costs, /*seed=*/7),
        sw(costs.plain_switch_delay),
        cpu(&sim, config.cores),
        rpc(&sim, &net),
        vol(std::make_shared<ServerVolatile>(&sim, config.shard_count)) {
    net.SetSwitch(&sw);
    cluster = std::make_unique<SingleNodeCluster>(rpc.id());
    sw.SetServerGroup({rpc.id()});
    ctx = ServerContext{&sim,    &net, cluster.get(), &durable, &costs,
                        &config, &cpu, &rpc,          &stats,   &tracker_impl};
    agg = std::make_unique<Aggregation>(ctx);
    push = std::make_unique<PushEngine>(ctx, *agg);
    agg->SetRebinder(push.get());
    rpc.SetCpu(&cpu);
    rpc.SetRequestHandler([this](net::Packet p) {
      if (p.body->type == PushReq::kType) {
        VolPtr v = vol;
        sim::Spawn(push->HandlePush(std::move(p), std::move(v)));
      }
    });
  }

  InodeId SeedDir(const InodeId& pid, const std::string& name, uint64_t tag) {
    InodeId id;
    id.w[0] = tag;
    id.w[3] = 2;
    Attr attr;
    attr.id = id;
    attr.type = FileType::kDirectory;
    attr.mode = 0755;
    const std::string ikey = InodeKey(pid, name);
    vol->kv.Put(ikey, attr.Encode());
    vol->kv.Put(DirIndexKey(id),
                EncodeDirIndex(ikey, FingerprintOf(pid, name)));
    return id;
  }

  Attr ReadAttr(const InodeId& pid, const std::string& name) {
    auto value = vol->kv.Get(InodeKey(pid, name));
    EXPECT_TRUE(value.has_value());
    return value.has_value() ? Attr::Decode(*value) : Attr{};
  }

  // Delivers one PushReq over the fabric and returns the owner's response
  // (an out-of-group endpoint plays the pushing source server).
  PushResp Deliver(net::MsgPtr req) {
    PushResp out;
    out.status = StatusCode::kInternal;
    net::RpcEndpoint source(&sim, &net);
    sim::Spawn([](net::RpcEndpoint* cli, net::NodeId server, net::MsgPtr msg,
                  PushResp* o) -> sim::Task<void> {
      net::CallOptions opts;
      opts.timeout = sim::Milliseconds(100);
      opts.max_attempts = 2;
      auto r = co_await cli->Call(server, msg, opts);
      if (r.ok()) {
        if (const auto* resp = net::MsgAs<PushResp>(*r)) {
          *o = *resp;
        }
      }
    }(&source, rpc.id(), std::move(req), &out));
    sim.Run();
    return out;
  }

  sim::Simulator sim;
  sim::CostModel costs;
  net::Network net;
  net::PlainSwitch sw;
  ServerConfig config;
  tracker::OwnerTracker tracker_impl;
  DurableState durable;
  sim::CpuPool cpu;
  net::RpcEndpoint rpc;
  ServerStats stats;
  std::unique_ptr<SingleNodeCluster> cluster;
  ServerContext ctx;
  VolPtr vol;
  std::unique_ptr<Aggregation> agg;
  std::unique_ptr<PushEngine> push;
};

ChangeLogEntry MakeEntry(uint64_t seq, const std::string& name, OpType op,
                         int64_t ts) {
  ChangeLogEntry e;
  e.seq = seq;
  e.timestamp = ts;
  e.op = op;
  e.name = name;
  e.entry_type = FileType::kFile;
  e.size_delta = op == OpType::kCreate ? 1 : -1;
  return e;
}

net::MsgPtr MakePush(const InodeId& dir, psw::Fingerprint fp,
                     uint64_t batch_token, uint64_t first_seq,
                     uint64_t last_seq) {
  auto req = std::make_shared<PushReq>();
  req->src_server = 0;
  PushReq::PerDir pd;
  pd.dir = dir;
  pd.fp = fp;
  pd.batch_token = batch_token;
  for (uint64_t s = first_seq; s <= last_seq; ++s) {
    pd.entries.push_back(MakeEntry(s, "f" + std::to_string(s), OpType::kCreate,
                                   100 + static_cast<int64_t>(s)));
  }
  req->dirs.push_back(std::move(pd));
  return req;
}

// A retransmitted section (same token — lost ack, rebind replay) must apply
// exactly once: the owner no-ops the duplicate via its committed token and
// re-acks the original high-water mark.
TEST(DuplicatePush, RetransmittedBatchAppliesExactlyOnce) {
  PushOwnerHarness h;
  const InodeId parent = RootId();
  const InodeId dir = h.SeedDir(parent, "docs", /*tag=*/501);
  const psw::Fingerprint fp = FingerprintOf(parent, "docs");

  net::MsgPtr req = MakePush(dir, fp, /*batch_token=*/42, 1, 3);
  PushResp first = h.Deliver(req);
  ASSERT_EQ(first.status, StatusCode::kOk);
  ASSERT_EQ(first.acked.size(), 1u);
  EXPECT_EQ(first.acked[0].acked_seq, 3u);
  EXPECT_EQ(h.stats.entries_applied, 3u);

  // Same message again: the wire-level duplicate.
  PushResp second = h.Deliver(req);
  ASSERT_EQ(second.status, StatusCode::kOk);
  ASSERT_EQ(second.acked.size(), 1u);
  EXPECT_EQ(second.acked[0].status, PushResp::SectionStatus::kApplied);
  EXPECT_EQ(second.acked[0].acked_seq, 3u);

  EXPECT_EQ(h.stats.entries_applied, 3u);
  EXPECT_EQ(h.stats.push_batches_deduped, 1u);
  EXPECT_EQ(h.ReadAttr(parent, "docs").size, 3u);
  EXPECT_EQ(h.vol->kv.CountPrefix(EntryPrefix(dir)), 3u);

  // The token rode the WAL apply records, so the filter survives recovery.
  int tokened = 0;
  for (const auto& r : h.durable.wal.records()) {
    if (r.type != kWalEntryApply) {
      continue;
    }
    if (EntryApplyRecord::Decode(r.payload).batch_token == 42) {
      ++tokened;
    }
  }
  EXPECT_EQ(tokened, 3);
}

// Newer tokens keep applying; a stale token arriving after a newer one has
// been committed still no-ops (token comparison is <=, not ==).
TEST(DuplicatePush, StaleTokenAfterNewerCommitStillNoOps) {
  PushOwnerHarness h;
  const InodeId parent = RootId();
  const InodeId dir = h.SeedDir(parent, "docs", /*tag=*/502);
  const psw::Fingerprint fp = FingerprintOf(parent, "docs");

  (void)h.Deliver(MakePush(dir, fp, /*batch_token=*/42, 1, 3));
  PushResp next = h.Deliver(MakePush(dir, fp, /*batch_token=*/43, 4, 5));
  ASSERT_EQ(next.acked.size(), 1u);
  EXPECT_EQ(next.acked[0].acked_seq, 5u);
  EXPECT_EQ(h.stats.entries_applied, 5u);
  EXPECT_EQ(h.stats.push_batches_deduped, 0u);

  // The straggler duplicate of the FIRST batch, after 43 committed.
  PushResp stale = h.Deliver(MakePush(dir, fp, /*batch_token=*/42, 1, 3));
  ASSERT_EQ(stale.acked.size(), 1u);
  EXPECT_EQ(stale.acked[0].acked_seq, 5u);
  EXPECT_EQ(h.stats.entries_applied, 5u);
  EXPECT_EQ(h.stats.push_batches_deduped, 1u);
  EXPECT_EQ(h.ReadAttr(parent, "docs").size, 5u);
}

// Untokened sections (legacy/aggregation paths) bypass the token filter and
// fall back to the per-lane high-water-mark dedup.
TEST(DuplicatePush, UntokenedDuplicateFallsBackToHwmDedup) {
  PushOwnerHarness h;
  const InodeId parent = RootId();
  const InodeId dir = h.SeedDir(parent, "docs", /*tag=*/503);
  const psw::Fingerprint fp = FingerprintOf(parent, "docs");

  (void)h.Deliver(MakePush(dir, fp, /*batch_token=*/0, 1, 3));
  (void)h.Deliver(MakePush(dir, fp, /*batch_token=*/0, 1, 3));

  EXPECT_EQ(h.stats.entries_applied, 3u);
  EXPECT_EQ(h.stats.push_batches_deduped, 0u);  // not the token path
  EXPECT_EQ(h.stats.entries_deduped, 3u);       // hwm caught the replay
  EXPECT_EQ(h.ReadAttr(parent, "docs").size, 3u);
}

// ---------------------------------------------------------------------------
// Per-shard dir-session cap
// ---------------------------------------------------------------------------

// The table cap divides across shards, and evictions are charged to the
// shard owning the directory's fingerprint group (all sessions of one
// directory land there — session ids encode their minting shard).
TEST(PerShardDirSessions, EvictionsLandOnTheOwningShard) {
  ClusterConfig cfg = SmallClusterConfig(4);
  cfg.server_template.shard_count = 4;
  cfg.server_template.max_dir_sessions = 8;  // 2 per shard
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());

  fs.Run([](SwitchFsClient* c) -> sim::Task<void> {
    std::vector<DirHandle> handles;
    for (int i = 0; i < 5; ++i) {
      auto h = co_await c->OpenDir("/d");
      if (h.ok()) {
        handles.push_back(*h);
      }
    }
    for (const DirHandle& h : handles) {
      (void)co_await c->CloseDir(h);
    }
  }(fs.client.get()));

  const psw::Fingerprint fp = FingerprintOf(RootId(), "d");
  const uint32_t owner = fs.cluster.ring().Owner(fp);
  const ServerVolatile& v = fs.cluster.server(owner).vol_for_test();
  // 5 concurrent sessions against a per-shard cap of 2: three LRU evictions,
  // all on the directory's own shard.
  EXPECT_EQ(v.ShardFor(fp).dir_sessions_evicted, 3u);
  uint64_t total = 0;
  for (size_t i = 0; i < v.num_shards(); ++i) {
    total += v.ShardAt(i).dir_sessions_evicted;
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(fs.cluster.server(owner).stats().dir_sessions_evicted, 3u);
}

// ---------------------------------------------------------------------------
// Shard run-queue lanes
// ---------------------------------------------------------------------------

// A lane task for the tests below: free coroutine over copied args (a
// coroutine lambda's captures would dangle once the queued thunk object is
// destroyed — same rule production call sites follow).
sim::Task<void> RecordTask(sim::Simulator* sim,
                           std::vector<std::string>* events, std::string tag,
                           sim::SimTime busy) {
  events->push_back(tag + ":start");
  co_await sim::Delay(sim, busy);
  events->push_back(tag + ":end");
}

sim::Task<void> BumpTask(int* counter) {
  ++*counter;
  co_return;
}

// The apply lane is a serial drainer: per shard, task N+1 starts only after
// task N finished, even when N suspends mid-task. Different shards drain
// independently.
TEST(ShardLanes, ApplyLaneSerializesPerShardOnly) {
  sim::Simulator sim;
  auto vol = std::make_shared<ServerVolatile>(&sim, 4);
  std::vector<std::string> events;

  auto task = [&](std::string tag, size_t shard) {
    EnqueueShardTask(vol, shard, ShardLane::kApply,
                     [&sim, &events, tag]() {
                       return RecordTask(&sim, &events, tag,
                                         sim::Milliseconds(1));
                     });
  };
  task("a1", 0);
  task("a2", 0);  // same shard: must wait for a1
  task("b1", 1);  // other shard: overlaps with a1
  sim.Run();

  ASSERT_EQ(events.size(), 6u);
  // Shard 0 is strictly serialized...
  std::vector<std::string> shard0;
  for (const auto& e : events) {
    if (e[0] == 'a') {
      shard0.push_back(e);
    }
  }
  EXPECT_EQ(shard0,
            (std::vector<std::string>{"a1:start", "a1:end", "a2:start",
                                      "a2:end"}));
  // ...while shard 1's task started before shard 0 finished its queue.
  EXPECT_LT(std::find(events.begin(), events.end(), "b1:start"),
            std::find(events.begin(), events.end(), "a2:start"));
}

// Handoff-lane tasks dispatch FIFO but run as independent chains: a task
// that parks (awaiting a later event) must not block the next one.
TEST(ShardLanes, HandoffLaneDoesNotSerialize) {
  sim::Simulator sim;
  auto vol = std::make_shared<ServerVolatile>(&sim, 2);
  std::vector<std::string> events;

  EnqueueShardTask(vol, 0, ShardLane::kHandoff, [&sim, &events]() {
    return RecordTask(&sim, &events, "slow", sim::Milliseconds(5));
  });
  EnqueueShardTask(vol, 0, ShardLane::kHandoff, [&sim, &events]() {
    return RecordTask(&sim, &events, "fast", sim::SimTime{0});
  });
  sim.Run();

  EXPECT_EQ(events,
            (std::vector<std::string>{"slow:start", "fast:start", "fast:end",
                                      "slow:end"}));
}

// ---------------------------------------------------------------------------
// Run-while-work-pending mode
// ---------------------------------------------------------------------------

// Run() stops at an empty event queue even when a registered source still
// holds parked work; RunWhileWorkPending kicks the source until it drains.
TEST(RunWhileWorkPending, DrainsRegisteredSourceBacklog) {
  sim::Simulator sim;
  std::vector<int> backlog = {1, 2, 3};
  int processed = 0;
  bool drain_scheduled = false;
  const uint64_t id = sim.RegisterWorkSource(sim::Simulator::WorkSource{
      [&backlog] { return backlog.size(); },
      [&] {
        if (backlog.empty() || drain_scheduled) {
          return;
        }
        drain_scheduled = true;
        sim.ScheduleAfter(sim::Microseconds(1), [&] {
          drain_scheduled = false;
          if (!backlog.empty()) {
            backlog.pop_back();
            ++processed;
          }
        });
      }});

  sim.Run();
  EXPECT_EQ(processed, 0);
  EXPECT_EQ(sim.pending_source_work(), 3u);

  sim.RunWhileWorkPending();
  EXPECT_EQ(processed, 3);
  EXPECT_EQ(sim.pending_source_work(), 0u);
  sim.UnregisterWorkSource(id);
}

// A source that reports pending work but never schedules anything must not
// livelock the loop (the no-progress guard).
TEST(RunWhileWorkPending, StuckSourceDoesNotLivelock) {
  sim::Simulator sim;
  const uint64_t id = sim.RegisterWorkSource(sim::Simulator::WorkSource{
      [] { return static_cast<size_t>(1); }, [] {}});
  sim.RunWhileWorkPending();  // must return
  EXPECT_EQ(sim.pending_source_work(), 1u);
  sim.UnregisterWorkSource(id);
}

// Parked shard-queue work on a server volatile drains through the same
// source mechanism SwitchServer registers: pending counts it, a kick round
// starts the lane drainers.
TEST(RunWhileWorkPending, KickStartsShardLaneDrains) {
  sim::Simulator sim;
  auto vol = std::make_shared<ServerVolatile>(&sim, 4);
  int ran = 0;
  // Park tasks without the auto-kick by enqueueing from inside an event:
  // EnqueueShardTask spawns a drainer, but the drainer is itself an event —
  // after Run() both are done; the interesting case is a fresh backlog
  // surfacing between Run() and the verify, which the source reports.
  const uint64_t id = sim.RegisterWorkSource(sim::Simulator::WorkSource{
      [&vol] { return PendingShardTasks(*vol); },
      [&vol] { KickShardDrains(vol); }});

  // Seed a backlog directly onto the queue the way a crashed drain leaves
  // it: tasks present, no drainer running.
  vol->ShardAt(1).apply_queue.push_back([&ran]() { return BumpTask(&ran); });
  vol->ShardAt(3).handoff_queue.push_back([&ran]() { return BumpTask(&ran); });
  EXPECT_EQ(sim.pending_source_work(), 2u);

  sim.RunWhileWorkPending();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(PendingShardTasks(*vol), 0u);
  sim.UnregisterWorkSource(id);
}

}  // namespace
}  // namespace switchfs::core
