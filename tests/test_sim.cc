// Unit tests for the discrete-event simulator core: event ordering,
// determinism, RunUntil semantics, and coroutine task plumbing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace switchfs::sim {
namespace {

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(Simulator, EqualTimestampsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAt(50, [&] { fired_at = sim.Now(); });  // in the past
  });
  sim.Run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&] { fired++; });
  sim.ScheduleAt(20, [&] { fired++; });
  sim.ScheduleAt(30, [&] { fired++; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, NestedSchedulingAdvancesTime) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.ScheduleAt(1, [&] {
    times.push_back(sim.Now());
    sim.ScheduleAfter(5, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{1, 6}));
}

// --- coroutine task tests ---

Task<int> ReturnAfter(Simulator* sim, SimTime d, int v) {
  co_await Delay(sim, d);
  co_return v;
}

Task<void> Accumulate(Simulator* sim, std::vector<int>* out) {
  out->push_back(co_await ReturnAfter(sim, 10, 1));
  out->push_back(co_await ReturnAfter(sim, 10, 2));
  out->push_back(co_await ReturnAfter(sim, 10, 3));
}

TEST(Task, SequentialAwaitsAccumulateDelay) {
  Simulator sim;
  std::vector<int> out;
  Spawn(Accumulate(&sim, &out));
  sim.Run();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(Task, SpawnRunsEagerlyUntilFirstSuspension) {
  Simulator sim;
  bool started = false;
  bool finished = false;
  Spawn([](Simulator* s, bool* st, bool* fin) -> Task<void> {
    *st = true;
    co_await Delay(s, 5);
    *fin = true;
  }(&sim, &started, &finished));
  EXPECT_TRUE(started);
  EXPECT_FALSE(finished);
  sim.Run();
  EXPECT_TRUE(finished);
}

TEST(Task, ValueTaskCompletingSynchronously) {
  Simulator sim;
  int got = 0;
  Spawn([](int* out) -> Task<void> {
    auto immediate = []() -> Task<int> { co_return 42; };
    *out = co_await immediate();
  }(&got));
  sim.Run();
  EXPECT_EQ(got, 42);
}

TEST(Task, ManyConcurrentTasksInterleaveDeterministically) {
  Simulator sim;
  std::string trace_a;
  std::string trace_b;
  auto worker = [](Simulator* s, std::string* trace, char tag,
                   SimTime step) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      co_await Delay(s, step);
      trace->push_back(tag);
    }
  };
  Spawn(worker(&sim, &trace_a, 'a', 10));
  Spawn(worker(&sim, &trace_b, 'b', 15));
  sim.Run();
  EXPECT_EQ(trace_a, "aaa");
  EXPECT_EQ(trace_b, "bbb");
  EXPECT_EQ(sim.Now(), 45);
}

}  // namespace
}  // namespace switchfs::sim
