// In-switch metadata read cache tests:
//  * MetaCache register-structure unit tests (set-associative layout, clock
//    eviction, the per-set version guard that closes the read-miss/install
//    race, control-plane predicate flushes),
//  * end-to-end cached reads through the cluster (hit counters, read-your-
//    writes after setattr/chmod/unlink/rename),
//  * fault scenarios: owner crash between install and invalidate (recovery
//    predicate flush), switch crash/recovery, lossy+reordered transport
//    (lost InvalBroadcasts must never yield a stale cached read),
//  * a multi-seed staleness property sweep: concurrent writers bump a
//    strictly increasing mode on hot files while readers stat them through
//    the cache; no read may ever observe a value older than the latest
//    committed write at the time the read was issued.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/cache_record.h"
#include "src/core/cluster.h"
#include "src/pswitch/meta_cache.h"
#include "tests/switchfs_test_util.h"

namespace switchfs::psw {
namespace {

net::CacheRecord RecordWithMode(uint32_t mode) {
  core::Attr attr;
  attr.type = core::FileType::kFile;
  attr.mode = mode;
  return core::PackCacheRecord(attr, /*read_at=*/7);
}

TEST(MetaCache, InstallThenLookupHits) {
  MetaCacheConfig cfg;
  cfg.num_ways = 2;
  cfg.num_sets = 16;
  MetaCache cache(cfg);
  const Fingerprint fp = MakeFingerprint(3, 0xabcd);

  net::CacheRecord out{};
  EXPECT_FALSE(cache.Lookup(fp, &out));
  EXPECT_EQ(cache.misses(), 1u);

  ASSERT_TRUE(cache.Install(fp, RecordWithMode(0712), cache.VersionOf(fp)));
  EXPECT_TRUE(cache.Contains(fp));
  ASSERT_TRUE(cache.Lookup(fp, &out));
  int64_t read_at = 0;
  const core::Attr attr = core::UnpackCacheRecord(out, &read_at);
  EXPECT_EQ(attr.mode, 0712u);
  EXPECT_EQ(read_at, 7);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.Population(), 1u);
}

TEST(MetaCache, EvictBumpsVersionAndRejectsStaleInstall) {
  MetaCache cache(MetaCacheConfig{2, 16});
  const Fingerprint fp = MakeFingerprint(5, 0x1111);

  // The read-miss/install race: a read exports the version, then a writer's
  // evict intervenes before the owner's install arrives. The install must be
  // rejected even though the entry was never present.
  const uint32_t pre_write_version = cache.VersionOf(fp);
  EXPECT_FALSE(cache.Evict(fp));  // absent, but the version still bumps
  EXPECT_NE(cache.VersionOf(fp), pre_write_version);
  EXPECT_FALSE(cache.Install(fp, RecordWithMode(0600), pre_write_version));
  EXPECT_FALSE(cache.Contains(fp));
  EXPECT_EQ(cache.install_rejects(), 1u);

  // A fresh read/install cycle succeeds, and a later evict removes it.
  ASSERT_TRUE(cache.Install(fp, RecordWithMode(0601), cache.VersionOf(fp)));
  EXPECT_TRUE(cache.Evict(fp));
  EXPECT_FALSE(cache.Contains(fp));
}

TEST(MetaCache, ClockEvictionKeepsSetBounded) {
  MetaCacheConfig cfg;
  cfg.num_ways = 4;
  cfg.num_sets = 8;
  MetaCache cache(cfg);
  // 10 distinct tags all mapping to set 2: population stays at the way count
  // and the most recent installs survive the clock hand.
  for (uint32_t t = 1; t <= 10; ++t) {
    const Fingerprint fp = MakeFingerprint(2, 0x100 + t);
    ASSERT_TRUE(cache.Install(fp, RecordWithMode(t), cache.VersionOf(fp)));
  }
  EXPECT_EQ(cache.Population(), 4u);
  EXPECT_TRUE(cache.Contains(MakeFingerprint(2, 0x100 + 10)));
}

TEST(MetaCache, ClearDropsEntriesAndGuardsPrebootInstalls) {
  MetaCache cache(MetaCacheConfig{2, 16});
  const Fingerprint fp = MakeFingerprint(9, 0x2222);
  const uint32_t pre_clear = cache.VersionOf(fp);
  ASSERT_TRUE(cache.Install(fp, RecordWithMode(0755), pre_clear));
  cache.Clear();
  EXPECT_EQ(cache.Population(), 0u);
  // Versions are monotonic across the reboot: an install stamped before the
  // clear must not be accepted after it.
  EXPECT_FALSE(cache.Install(fp, RecordWithMode(0755), pre_clear));
}

TEST(MetaCache, EvictIfDropsMatchingEntries) {
  MetaCache cache(MetaCacheConfig{2, 16});
  const Fingerprint keep = MakeFingerprint(1, 0x10);
  const Fingerprint drop1 = MakeFingerprint(2, 0x20);
  const Fingerprint drop2 = MakeFingerprint(3, 0x30);
  for (Fingerprint fp : {keep, drop1, drop2}) {
    ASSERT_TRUE(cache.Install(fp, RecordWithMode(0644), cache.VersionOf(fp)));
  }
  const uint32_t keep_version = cache.VersionOf(drop1);
  EXPECT_EQ(cache.EvictIf([&](Fingerprint fp) { return fp != keep; }), 2u);
  EXPECT_TRUE(cache.Contains(keep));
  EXPECT_FALSE(cache.Contains(drop1));
  EXPECT_FALSE(cache.Contains(drop2));
  // The flush bumps the affected set versions like any other evict.
  EXPECT_NE(cache.VersionOf(drop1), keep_version);
}

}  // namespace
}  // namespace switchfs::psw

namespace switchfs::core {
namespace {

ClusterConfig CachedClusterConfig(uint32_t servers = 4) {
  ClusterConfig cfg = SmallClusterConfig(servers);
  cfg.server_template.switch_cache = true;
  return cfg;
}

Status SetMode(FsHarness& fs, const std::string& path, uint32_t mode) {
  Status out = InternalError("not run");
  AttrDelta delta;
  delta.set_mode = true;
  delta.mode = mode;
  fs.Run([](SwitchFsClient* c, const std::string p, AttrDelta d,
            Status* o) -> sim::Task<void> {
    *o = co_await c->SetAttr(p, d);
  }(fs.client.get(), path, delta, &out));
  return out;
}

TEST(SwitchCache, HotStatServedFromDataPlane) {
  FsHarness fs(CachedClusterConfig());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());

  auto first = fs.Stat("/d/f");
  ASSERT_TRUE(first.ok());
  const auto& dp = fs.cluster.data_plane()->stats();
  EXPECT_GE(dp.mc_installs, 1u);
  const uint64_t hits_before = dp.mc_hits;

  auto second = fs.Stat("/d/f");
  ASSERT_TRUE(second.ok());
  EXPECT_GT(dp.mc_hits, hits_before);
  EXPECT_EQ(second->id, first->id);
  EXPECT_EQ(second->mode, first->mode);
  EXPECT_EQ(second->type, first->type);
  EXPECT_GE(fs.cluster.TotalStats().cache_installs, 1u);
}

TEST(SwitchCache, SetAttrEvictsBeforeCommit) {
  FsHarness fs(CachedClusterConfig());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  ASSERT_TRUE(fs.Stat("/d/f").ok());
  ASSERT_TRUE(fs.Stat("/d/f").ok());  // cached now

  ASSERT_TRUE(SetMode(fs, "/d/f", 0700).ok());
  EXPECT_GE(fs.cluster.TotalStats().cache_evicts, 1u);
  auto after = fs.Stat("/d/f");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->mode, 0700u);  // read-your-writes through the cache
}

TEST(SwitchCache, UnlinkNeverServesDeletedFile) {
  FsHarness fs(CachedClusterConfig());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  ASSERT_TRUE(fs.Stat("/d/f").ok());
  ASSERT_TRUE(fs.Stat("/d/f").ok());

  ASSERT_TRUE(fs.Unlink("/d/f").ok());
  auto gone = fs.Stat("/d/f");
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
}

TEST(SwitchCache, RenameEvictsSourceEntry) {
  FsHarness fs(CachedClusterConfig());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  ASSERT_TRUE(fs.Stat("/d/f").ok());
  ASSERT_TRUE(fs.Stat("/d/f").ok());

  ASSERT_TRUE(fs.Rename("/d/f", "/d/g").ok());
  auto gone = fs.Stat("/d/f");
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  auto moved = fs.Stat("/d/g");
  EXPECT_TRUE(moved.ok());
}

TEST(SwitchCache, OwnerCrashBetweenInstallAndInvalidate) {
  // The crashed owner loses its installed-set bookkeeping (cached_fps), so
  // its next write could no longer find the entry to evict. Recovery must
  // flush everything the owner was responsible for out of the switch BEFORE
  // it serves again.
  FsHarness fs(CachedClusterConfig());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  auto dir = fs.StatDir("/d");
  ASSERT_TRUE(dir.ok());
  const psw::Fingerprint fp = FingerprintOf(dir->id, "f");

  ASSERT_TRUE(fs.Stat("/d/f").ok());
  ASSERT_TRUE(fs.cluster.data_plane()->CacheContains(fp));

  const uint32_t owner = fs.cluster.ring().Owner(fp);
  fs.cluster.CrashServer(owner);
  EXPECT_TRUE(fs.cluster.data_plane()->CacheContains(fp));  // still resident
  fs.Run(fs.cluster.RecoverServer(owner));
  EXPECT_FALSE(fs.cluster.data_plane()->CacheContains(fp));

  ASSERT_TRUE(SetMode(fs, "/d/f", 0711).ok());
  auto after = fs.Stat("/d/f");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->mode, 0711u);
}

TEST(SwitchCache, SwitchCrashClearsAndRecoveryRepopulates) {
  FsHarness fs(CachedClusterConfig());
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  auto dir = fs.StatDir("/d");
  ASSERT_TRUE(dir.ok());
  const psw::Fingerprint fp = FingerprintOf(dir->id, "f");
  ASSERT_TRUE(fs.Stat("/d/f").ok());
  ASSERT_TRUE(fs.cluster.data_plane()->CacheContains(fp));

  fs.cluster.CrashSwitch();
  EXPECT_FALSE(fs.cluster.data_plane()->CacheContains(fp));
  fs.Run(fs.cluster.RecoverSwitch());

  auto again = fs.Stat("/d/f");
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(fs.Stat("/d/f").ok());
  EXPECT_TRUE(fs.cluster.data_plane()->CacheContains(fp));
}

TEST(SwitchCache, DisabledLeverLeavesDataPlaneCold) {
  FsHarness fs(SmallClusterConfig());  // switch_cache defaults off
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  ASSERT_TRUE(fs.Stat("/d/f").ok());
  ASSERT_TRUE(fs.Stat("/d/f").ok());
  const auto& dp = fs.cluster.data_plane()->stats();
  EXPECT_EQ(dp.mc_hits, 0u);
  EXPECT_EQ(dp.mc_installs, 0u);
  EXPECT_EQ(fs.cluster.TotalStats().cache_installs, 0u);
}

// ---------------------------------------------------------------------------
// Multi-seed staleness property sweep
// ---------------------------------------------------------------------------

struct CacheSweepParam {
  uint64_t seed;
  double loss;
  double dup;
  int jitter_us;
};

class SwitchCacheSweep : public ::testing::TestWithParam<CacheSweepParam> {};

TEST_P(SwitchCacheSweep, NoCachedReadStalerThanCommittedWrite) {
  const CacheSweepParam param = GetParam();
  ClusterConfig cfg = CachedClusterConfig(4);
  cfg.seed = param.seed;
  cfg.faults.loss_probability = param.loss;
  cfg.faults.duplicate_probability = param.dup;
  cfg.faults.reorder_jitter = sim::Microseconds(param.jitter_us);
  FsHarness fs(cfg);

  constexpr int kFiles = 4;
  ASSERT_TRUE(fs.Mkdir("/h").ok());
  std::array<std::string, kFiles> paths;
  for (int f = 0; f < kFiles; ++f) {
    paths[f] = "/h/f" + std::to_string(f);
    ASSERT_TRUE(fs.Create(paths[f]).ok());
  }

  // One writer per file bumps the mode through a strictly increasing value
  // sequence; `committed[f]` is the latest value whose SetAttr was
  // acknowledged. Readers snapshot committed[f] BEFORE issuing a stat: any
  // result below the snapshot is a stale cached read. Lossy/reordered
  // profiles specifically exercise lost and late InvalBroadcasts — the
  // correctness anchor is the retried pre-commit evict RTT, not the
  // broadcast stamps.
  std::array<uint32_t, kFiles> committed{};
  int violations = 0;
  constexpr int kWriterOps = 20;
  constexpr int kReaders = 6;
  constexpr int kReaderOps = 80;

  std::vector<std::unique_ptr<SwitchFsClient>> clients;
  for (int i = 0; i < kFiles + kReaders; ++i) {
    clients.push_back(fs.cluster.MakeClient());
  }
  for (int f = 0; f < kFiles; ++f) {
    sim::Spawn([](SwitchFsClient* c, const std::string path,
                  uint32_t* committed) -> sim::Task<void> {
      for (int k = 1; k <= kWriterOps; ++k) {
        AttrDelta delta;
        delta.set_mode = true;
        delta.mode = 1000 + static_cast<uint32_t>(k);
        Status s = co_await c->SetAttr(path, delta);
        if (s.ok()) {
          *committed = delta.mode;
        }
      }
    }(clients[f].get(), paths[f], &committed[f]));
  }
  for (int r = 0; r < kReaders; ++r) {
    sim::Spawn([](SwitchFsClient* c, const std::array<std::string, kFiles>* ps,
                  const std::array<uint32_t, kFiles>* committed, uint64_t seed,
                  int* violations) -> sim::Task<void> {
      Rng rng(seed);
      for (int i = 0; i < kReaderOps; ++i) {
        const size_t f = rng.NextBelow(kFiles);
        const uint32_t snapshot = (*committed)[f];
        auto attr = co_await c->Stat((*ps)[f]);
        if (attr.ok() && attr->mode < snapshot && snapshot != 0 &&
            attr->mode >= 1000) {
          *violations += 1;
        }
        if (attr.ok() && attr->mode < snapshot && attr->mode < 1000 &&
            snapshot != 0) {
          *violations += 1;  // pre-storm mode after a committed write
        }
      }
    }(clients[kFiles + r].get(), &paths, &committed, param.seed * 31 + r,
      &violations));
  }
  fs.cluster.sim().Run();

  EXPECT_EQ(violations, 0);
  // The sweep must actually exercise the cache to prove anything.
  EXPECT_GT(fs.cluster.data_plane()->stats().mc_hits, 0u);
  EXPECT_GT(fs.cluster.TotalStats().cache_evicts, 0u);
  // Post-quiesce read-back: every file's final mode is at least the last
  // acknowledged write (a timed-out final write may still have committed).
  for (int f = 0; f < kFiles; ++f) {
    auto attr = fs.Stat(paths[f]);
    ASSERT_TRUE(attr.ok()) << paths[f];
    EXPECT_GE(attr->mode, committed[f]) << paths[f];
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SwitchCacheSweep,
    ::testing::Values(CacheSweepParam{7, 0.0, 0.0, 0},
                      CacheSweepParam{21, 0.0, 0.0, 0},
                      CacheSweepParam{63, 0.0, 0.0, 0},
                      CacheSweepParam{7, 0.03, 0.05, 3},
                      CacheSweepParam{21, 0.05, 0.0, 6}));

}  // namespace
}  // namespace switchfs::core
