// Fault-tolerance tests (paper §5.4, §A.1): unreliable-network handling
// (loss, duplication, reordering), dirty-set overflow fallback (§7.3.2),
// server crash recovery with WAL replay, switch crash recovery, and crashes
// during aggregation.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/tracker/dedicated_tracker.h"
#include "src/tracker/replicated_tracker.h"
#include "src/tracker/tracker_server.h"
#include "tests/switchfs_test_util.h"

namespace switchfs::core {
namespace {

ClusterConfig FaultyConfig(double loss, double dup, sim::SimTime jitter) {
  ClusterConfig cfg = SmallClusterConfig();
  cfg.faults.loss_probability = loss;
  cfg.faults.duplicate_probability = dup;
  cfg.faults.reorder_jitter = jitter;
  return cfg;
}

void CreateManyVerify(FsHarness& fs, int dirs, int files_per_dir) {
  for (int d = 0; d < dirs; ++d) {
    ASSERT_TRUE(fs.Mkdir("/d" + std::to_string(d)).ok()) << d;
  }
  int ok = 0;
  for (int d = 0; d < dirs; ++d) {
    for (int f = 0; f < files_per_dir; ++f) {
      Status s =
          fs.Create("/d" + std::to_string(d) + "/f" + std::to_string(f));
      ASSERT_TRUE(s.ok()) << d << "/" << f << ": " << s.ToString();
      ok++;
    }
  }
  ASSERT_EQ(ok, dirs * files_per_dir);
  for (int d = 0; d < dirs; ++d) {
    auto sd = fs.StatDir("/d" + std::to_string(d));
    ASSERT_TRUE(sd.ok()) << d;
    EXPECT_EQ(sd->size, static_cast<uint64_t>(files_per_dir)) << d;
    auto entries = fs.Readdir("/d" + std::to_string(d));
    ASSERT_TRUE(entries.ok());
    EXPECT_EQ(entries->size(), static_cast<size_t>(files_per_dir));
  }
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);
}

TEST(SwitchFsFault, SurvivesPacketLoss) {
  FsHarness fs(FaultyConfig(0.05, 0.0, 0));
  CreateManyVerify(fs, 4, 10);
  EXPECT_GT(fs.cluster.network().stats().packets_dropped, 0u);
}

TEST(SwitchFsFault, SurvivesDuplication) {
  FsHarness fs(FaultyConfig(0.0, 0.10, 0));
  CreateManyVerify(fs, 4, 10);
  EXPECT_GT(fs.cluster.network().stats().packets_duplicated, 0u);
}

TEST(SwitchFsFault, SurvivesReordering) {
  FsHarness fs(FaultyConfig(0.0, 0.0, sim::Microseconds(6)));
  CreateManyVerify(fs, 4, 10);
}

TEST(SwitchFsFault, SurvivesCombinedFaults) {
  FsHarness fs(FaultyConfig(0.03, 0.05, sim::Microseconds(3)));
  CreateManyVerify(fs, 3, 8);
}

TEST(SwitchFsFault, DuplicateRemovesCannotEvictLaterInserts) {
  // §5.4.1: a duplicated remove processed after the aggregation completes
  // must not remove fingerprints inserted by subsequent operations. High
  // duplication probability exercises exactly this path; correctness shows
  // as no lost updates.
  FsHarness fs(FaultyConfig(0.0, 0.3, sim::Microseconds(2)));
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(fs.Create("/d/f" + std::to_string(round)).ok());
    auto sd = fs.StatDir("/d");
    ASSERT_TRUE(sd.ok());
    EXPECT_EQ(sd->size, static_cast<uint64_t>(round + 1));
  }
  EXPECT_GT(fs.cluster.data_plane()->stats().stale_removes +
                fs.cluster.data_plane()->dirty_set(0).stale_removes() +
                fs.cluster.data_plane()->dirty_set(1).stale_removes(),
            0u);
}

TEST(SwitchFsFault, OverflowFallsBackToSynchronousUpdate) {
  // §7.3.2: with inserts forced to fail, every double-inode op redirects to
  // the parent's owner for a synchronous update — and remains correct.
  FsHarness fs;
  fs.cluster.data_plane()->SetForceInsertOverflow(true);
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fs.Create("/d/f" + std::to_string(i)).ok());
  }
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 20u);
  EXPECT_GT(fs.cluster.TotalStats().fallbacks, 0u);
  EXPECT_GT(fs.cluster.data_plane()->stats().insert_fallbacks, 0u);
  // Nothing is pending: the synchronous path applies immediately.
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);
  ASSERT_TRUE(fs.Unlink("/d/f3").ok());
  sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 19u);
}

TEST(SwitchFsFault, ServerCrashRecoversCommittedState) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  std::set<std::string> created;
  for (int i = 0; i < 30; ++i) {
    const std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(fs.Create("/d/" + name).ok());
    created.insert(name);
  }
  // Crash every server in turn and recover it; all committed state must
  // survive via WAL replay (§5.4.2).
  for (uint32_t s = 0; s < fs.cluster.ServerCount(); ++s) {
    fs.cluster.CrashServer(s);
    fs.Run(fs.cluster.RecoverServer(s));
    EXPECT_TRUE(fs.cluster.server(s).serving());
    EXPECT_GT(fs.cluster.server(s).stats().wal_replayed, 0u);
  }
  auto entries = fs.Readdir("/d");
  ASSERT_TRUE(entries.ok());
  std::set<std::string> got;
  for (const DirEntry& e : *entries) {
    got.insert(e.name);
  }
  EXPECT_EQ(got, created);
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 30u);
}

TEST(SwitchFsFault, CrashBeforeAggregationDoesNotLoseDeferredUpdates) {
  // Crash a server while its change-logs still hold un-applied entries; the
  // WAL must rebuild them and recovery must flush them (§A.1).
  ClusterConfig cfg = SmallClusterConfig();
  // Very long timers: pushes/aggregations will not fire on their own.
  cfg.server_template.push_idle_timeout = sim::Seconds(100);
  cfg.server_template.owner_quiet_period = sim::Seconds(100);
  cfg.server_template.push_mtu_entries = 1000000;
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  // Issue creates but stop the simulation before background flushes.
  std::vector<Status> results(10, InternalError(""));
  sim::Spawn([](SwitchFsClient* c, std::vector<Status>* out) -> sim::Task<void> {
    for (size_t i = 0; i < out->size(); ++i) {
      (*out)[i] = co_await c->Create("/d/f" + std::to_string(i));
    }
  }(fs.client.get(), &results));
  fs.cluster.sim().RunUntil(fs.cluster.sim().Now() + sim::Milliseconds(50));
  for (const Status& s : results) {
    ASSERT_TRUE(s.ok());
  }
  ASSERT_GT(fs.cluster.TotalPendingChangeLogEntries(), 0u);

  // Crash every server (deferred entries live on unknown owners), then
  // recover them all.
  for (uint32_t s = 0; s < fs.cluster.ServerCount(); ++s) {
    fs.cluster.CrashServer(s);
  }
  for (uint32_t s = 0; s < fs.cluster.ServerCount(); ++s) {
    sim::Spawn(fs.cluster.RecoverServer(s));
  }
  fs.cluster.sim().Run();
  for (uint32_t s = 0; s < fs.cluster.ServerCount(); ++s) {
    ASSERT_TRUE(fs.cluster.server(s).serving());
  }
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 10u);
  auto entries = fs.Readdir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 10u);
}

TEST(SwitchFsFault, SwitchCrashRecoveryRestoresConsistency) {
  // §5.4.2 switch failure: all dirty-set state is lost; recovery flushes all
  // change-logs so every directory returns to normal state.
  ClusterConfig cfg = SmallClusterConfig();
  cfg.server_template.push_idle_timeout = sim::Seconds(100);
  cfg.server_template.owner_quiet_period = sim::Seconds(100);
  cfg.server_template.push_mtu_entries = 1000000;
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  std::vector<Status> results(12, InternalError(""));
  sim::Spawn([](SwitchFsClient* c, std::vector<Status>* out) -> sim::Task<void> {
    for (size_t i = 0; i < out->size(); ++i) {
      (*out)[i] = co_await c->Create("/d/f" + std::to_string(i));
    }
  }(fs.client.get(), &results));
  fs.cluster.sim().RunUntil(fs.cluster.sim().Now() + sim::Milliseconds(50));
  for (const Status& s : results) {
    ASSERT_TRUE(s.ok());
  }
  ASSERT_GT(fs.cluster.TotalPendingChangeLogEntries(), 0u);

  fs.cluster.CrashSwitch();
  fs.Run(fs.cluster.RecoverSwitch());
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);

  // All deferred updates were applied; reads see them without aggregation.
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 12u);
  // And the system keeps working after recovery.
  ASSERT_TRUE(fs.Create("/d/after").ok());
  sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 13u);
}

TEST(SwitchFsFault, OwnerCrashMidPushDrainsBacklogAfterRestart) {
  // A directory's owner dies while other servers hold deferred updates for
  // it. Their pushes fail; the per-owner pusher must re-arm and drain the
  // backlog once the owner is back — no stranded change-logs.
  ClusterConfig cfg = SmallClusterConfig();
  // Long owner-side quiet period so the drain is attributable to the push
  // path, not the owner's proactive aggregation timer.
  cfg.server_template.owner_quiet_period = sim::Seconds(100);
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  // Warm the client's path cache with /d so later creates resolve without a
  // lookup at the (about to crash) owner.
  ASSERT_TRUE(fs.Create("/d/warm").ok());
  const psw::Fingerprint dir_fp = FingerprintOf(RootId(), "d");
  const uint32_t owner = fs.cluster.ring().Owner(dir_fp);
  fs.cluster.CrashServer(owner);

  // Creates execute on the file-hash servers; the ones landing on healthy
  // servers commit and defer a parent update toward the dead owner. Issue
  // them concurrently — a create whose executing server is the dead one
  // spins through its retry budget and must not serialize the rest.
  int ok = 0;
  for (int i = 0; i < 24; ++i) {
    sim::Spawn([](SwitchFsClient* c, int i, int* ok) -> sim::Task<void> {
      Status s = co_await c->Create("/d/f" + std::to_string(i));
      if (s.ok()) {
        (*ok)++;
      }
    }(fs.client.get(), i, &ok));
  }
  fs.cluster.sim().RunUntil(fs.cluster.sim().Now() + sim::Milliseconds(200));
  ASSERT_GT(ok, 0);
  ASSERT_GT(fs.cluster.TotalPendingChangeLogEntries(), 0u);
  EXPECT_GT(fs.cluster.TotalStats().push_failures, 0u);

  fs.Run(fs.cluster.RecoverServer(owner));
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, static_cast<uint64_t>(ok) + 1);
  auto entries = fs.Readdir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<size_t>(ok) + 1);
}

TEST(SwitchFsFault, RmdirRaceObsoletePushIsTrimmedNotRepushed) {
  // rmdir race (§5.2.3): a source still holding entries for a directory that
  // has since been removed must have its backlog trimmed by the owner's
  // "vanished directory" ack — pending entries drain to zero instead of
  // being re-pushed forever.
  ClusterConfig cfg = SmallClusterConfig();
  // Slow pushes so /e's deferred entries are still pending when it dies.
  cfg.server_template.push_idle_timeout = sim::Milliseconds(5);
  cfg.server_template.owner_quiet_period = sim::Milliseconds(8);
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/e").ok());
  std::vector<Status> results(6, InternalError(""));
  bool removed = false;
  sim::Spawn([](SwitchFsClient* c, std::vector<Status>* out,
                bool* removed) -> sim::Task<void> {
    for (size_t i = 0; i < out->size(); ++i) {
      (*out)[i] = co_await c->Create("/e/f" + std::to_string(i));
    }
    for (size_t i = 0; i < out->size(); ++i) {
      co_await c->Unlink("/e/f" + std::to_string(i));
    }
    *removed = (co_await c->Rmdir("/e")).ok();
  }(fs.client.get(), &results, &removed));
  fs.cluster.sim().Run();
  for (const Status& s : results) {
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  ASSERT_TRUE(removed);
  // Whatever entries remained for the removed directory were trimmed (either
  // applied before the rmdir or acked as obsolete) — nothing lingers.
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);
  // And the namespace keeps working.
  ASSERT_TRUE(fs.Mkdir("/e").ok());
  auto sd = fs.StatDir("/e");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 0u);
}

TEST(SwitchFsFault, RenameRaceRebindRetriesAcrossNewOwnerCrash) {
  // §5.2 rename race + new-owner crash: creates race a directory rename, so
  // some commit under the old fingerprint and are still pending when the
  // rename finishes. The new owner then crashes BEFORE the rebound push can
  // land: sources get the kMoved verdict from the old owner's tombstone,
  // re-key their logs, and the re-push toward the dead new owner must
  // retry — not strand — until it recovers. Afterwards every acknowledged
  // create must be observable at the directory's new location.
  ClusterConfig cfg = SmallClusterConfig();
  // Pushes idle long enough that raced entries are still pending when the
  // rename commits (the race window below lasts a few hundred us).
  cfg.server_template.push_idle_timeout = sim::Milliseconds(2);
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/b").ok());
  ASSERT_TRUE(fs.Mkdir("/a/d").ok());
  ASSERT_TRUE(fs.Create("/a/d/warm").ok());  // warms the clients' path caches

  const psw::Fingerprint old_fp =
      FingerprintOf(fs.Stat("/a")->id, "d");
  const InodeId b_id = fs.Stat("/b")->id;
  // Pick a destination name whose owner differs from the old owner (same
  // owner would re-create the dir index in place and never need the
  // tombstone) so the cross-server rebind actually happens.
  std::string dst_name;
  for (int i = 0;; ++i) {
    dst_name = "d2_" + std::to_string(i);
    if (fs.cluster.ring().Owner(FingerprintOf(b_id, dst_name)) !=
        fs.cluster.ring().Owner(old_fp)) {
      break;
    }
  }
  const uint32_t new_owner =
      fs.cluster.ring().Owner(FingerprintOf(b_id, dst_name));

  // Concurrent creates from several warmed clients race the rename; the
  // ones that commit between the rename's pre-lock aggregation snapshot and
  // its source-leg commit are exactly the moved_fp race window.
  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::vector<std::unique_ptr<SwitchFsClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(fs.cluster.MakeClient());
  }
  // Warm each extra client's cache on the pre-rename path.
  for (int c = 0; c < kClients; ++c) {
    Status warm = InternalError("");
    sim::Spawn([](SwitchFsClient* cl, int c, Status* out) -> sim::Task<void> {
      *out = co_await cl->Create("/a/d/wc" + std::to_string(c));
    }(clients[c].get(), c, &warm));
    fs.cluster.sim().RunUntil(fs.cluster.sim().Now() + sim::Milliseconds(5));
    ASSERT_TRUE(warm.ok());
  }
  int ok_creates = 0;
  bool renamed = false;
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn([](SwitchFsClient* cl, int c, int* ok) -> sim::Task<void> {
      for (int i = 0; i < kPerClient; ++i) {
        Status s =
            co_await cl->Create("/a/d/f" + std::to_string(c) + "_" +
                                std::to_string(i));
        if (s.ok()) {
          (*ok)++;
        }
      }
    }(clients[c].get(), c, &ok_creates));
  }
  sim::Spawn([](sim::Simulator* sm, SwitchFsClient* cl, const std::string dst,
                bool* out) -> sim::Task<void> {
    // A beat after the burst starts, so creates land on both sides of the
    // rename's race window.
    co_await sim::Delay(sm, sim::Microseconds(40));
    *out = (co_await cl->Rename("/a/d", dst)).ok();
  }(&fs.cluster.sim(), fs.client.get(), "/b/" + dst_name, &renamed));
  while (!renamed) {
    fs.cluster.sim().RunUntil(fs.cluster.sim().Now() + sim::Microseconds(50));
  }
  // Rename committed: the tombstone is installed at the old owner. Crash the
  // new owner before the 2 ms push-idle timers fire, so every raced entry's
  // rebound push finds it dead.
  fs.cluster.CrashServer(new_owner);
  fs.cluster.sim().RunUntil(fs.cluster.sim().Now() + sim::Milliseconds(30));

  const auto mid = fs.cluster.TotalStats();
  EXPECT_GT(mid.entries_rebound + mid.agg_entries_rebound, 0u)
      << "the race window was not exercised: no raced entries were rebound";
  EXPECT_GT(mid.push_failures, 0u)
      << "rebound pushes must have been retried against the dead new owner";
  ASSERT_GT(fs.cluster.TotalPendingChangeLogEntries(), 0u)
      << "rebound entries must stay pending, not be trimmed";

  fs.Run(fs.cluster.RecoverServer(new_owner));
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u)
      << "rebind retries must drain once the new owner is back";

  // Every acknowledged create (and the five warm files) is observable at the
  // new location: nothing vanished, nothing double-applied.
  auto sd = fs.StatDir("/b/" + dst_name);
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, static_cast<uint64_t>(ok_creates) + 1 + kClients);
  auto entries = fs.Readdir("/b/" + dst_name);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<size_t>(ok_creates) + 1 + kClients);
}

TEST(SwitchFsFault, RecoveryIsIdempotent) {
  // §A.1: recovering twice (nested crash during recovery) must not
  // double-apply entries.
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs.Create("/d/f" + std::to_string(i)).ok());
  }
  for (int round = 0; round < 2; ++round) {
    fs.cluster.CrashServer(1);
    fs.Run(fs.cluster.RecoverServer(1));
  }
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 10u);
}

TEST(SwitchFsFault, OperationsDuringCrashEventuallyFailOrSucceedCleanly) {
  // Ops racing a crashed server either time out or succeed after recovery;
  // none may corrupt state.
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  fs.cluster.CrashServer(2);
  int ok = 0;
  int failed = 0;
  sim::Spawn([](FsHarness* h, int* ok, int* failed) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      Status s = co_await h->client->Create("/d/x" + std::to_string(i));
      if (s.ok()) {
        (*ok)++;
      } else {
        (*failed)++;
      }
    }
  }(&fs, &ok, &failed));
  fs.cluster.sim().RunUntil(fs.cluster.sim().Now() + sim::Milliseconds(100));
  fs.Run(fs.cluster.RecoverServer(2));
  EXPECT_EQ(ok + failed, 20);
  // Whatever succeeded must be visible and consistent.
  auto entries = fs.Readdir("/d");
  ASSERT_TRUE(entries.ok());
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, entries->size());
}

// Tracker-fault tests: push/quiet timers are set to 100 s so deferred
// updates stay pending and the ONLY way a read can observe them is through
// the tracker. That also means these tests must never drain the simulator
// with Run() (which would fast-forward 100 s and fire the masked timers) —
// all work runs in bounded RunUntil windows.
sim::SimTime RunWindow(FsHarness& fs, sim::SimTime window,
                       sim::Task<void> script) {
  sim::Spawn(std::move(script));
  return fs.cluster.sim().RunUntil(fs.cluster.sim().Now() + window);
}

struct DirCheck {
  Status stat_status = InternalError("not run");
  uint64_t size = 0;
  Status list_status = InternalError("not run");
  size_t entries = 0;
};

sim::Task<void> CheckDirs(SwitchFsClient* c, std::vector<std::string> dirs,
                          std::vector<DirCheck>* out) {
  for (size_t i = 0; i < dirs.size(); ++i) {
    auto sd = co_await c->StatDir(dirs[i]);
    (*out)[i].stat_status = sd.status();
    if (sd.ok()) {
      (*out)[i].size = sd->size;
    }
    auto listing = co_await c->Readdir(dirs[i]);
    (*out)[i].list_status = listing.status();
    if (listing.ok()) {
      (*out)[i].entries = listing->size();
    }
  }
}

// Replicated tracker group (§7.3.3 extension): killing the chain's head
// mid-burst must not lose a single dirty-set entry. If the reconstructed
// dirty set dropped an entry, some directory below would serve a stale
// size. Invariants checked test_property_consistency style: (I1) size ==
// |entries| == acked creates per directory, (I3) no change-log entries
// linger after the reads.
TEST(SwitchFsFault, ReplicatedTrackerHeadCrashMidBurstLosesNoEntries) {
  ClusterConfig cfg = SmallClusterConfig();
  cfg.tracker = TrackerMode::kReplicated;
  cfg.tracker_replicas = 3;
  // Deferred updates stay pending: no proactive pushes or quiet-period
  // aggregations to mask a lost tracker entry.
  cfg.server_template.push_idle_timeout = sim::Seconds(100);
  cfg.server_template.owner_quiet_period = sim::Seconds(100);
  cfg.server_template.push_mtu_entries = 1000000;
  FsHarness fs(cfg);
  auto* rep = fs.cluster.replicated_tracker();
  ASSERT_NE(rep, nullptr);

  constexpr int kDirs = 4;
  constexpr int kFilesPerDir = 10;
  std::vector<std::string> dirs;
  std::vector<Status> mkdirs(kDirs, InternalError(""));
  for (int d = 0; d < kDirs; ++d) {
    dirs.push_back("/d" + std::to_string(d));
  }
  RunWindow(fs, sim::Milliseconds(20),
            [](SwitchFsClient* c, std::vector<std::string> ds,
               std::vector<Status>* out) -> sim::Task<void> {
              for (size_t i = 0; i < ds.size(); ++i) {
                (*out)[i] = co_await c->Mkdir(ds[i]);
              }
            }(fs.client.get(), dirs, &mkdirs));
  for (const Status& s : mkdirs) {
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  // Burst of creates; the head dies while they are in flight.
  std::vector<Status> results(kDirs * kFilesPerDir, InternalError(""));
  sim::Spawn([](SwitchFsClient* c, std::vector<Status>* out) -> sim::Task<void> {
    for (size_t i = 0; i < out->size(); ++i) {
      const std::string path = "/d" + std::to_string(i % kDirs) + "/f" +
                               std::to_string(i / kDirs);
      (*out)[i] = co_await c->Create(path);
    }
  }(fs.client.get(), &results));
  fs.cluster.sim().RunUntil(fs.cluster.sim().Now() + sim::Microseconds(400));

  const int old_head = rep->head_index();
  rep->CrashNode(old_head);
  // The burst finishes through lazy detection + failover.
  fs.cluster.sim().RunUntil(fs.cluster.sim().Now() + sim::Milliseconds(100));

  for (const Status& s : results) {
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_EQ(rep->failovers(), 1u);
  EXPECT_FALSE(rep->rebuilding());
  EXPECT_EQ(rep->chain().size(), 2u);
  EXPECT_NE(rep->head_index(), old_head);
  ASSERT_GT(fs.cluster.TotalPendingChangeLogEntries(), 0u);

  // Every directory read must observe every acked create — possible only if
  // the rebuilt tracker kept all scattered directories (no lost entries).
  std::vector<DirCheck> checks(dirs.size());
  RunWindow(fs, sim::Milliseconds(100),
            CheckDirs(fs.client.get(), dirs, &checks));
  for (size_t d = 0; d < checks.size(); ++d) {
    ASSERT_TRUE(checks[d].stat_status.ok()) << dirs[d];
    EXPECT_EQ(checks[d].size, static_cast<uint64_t>(kFilesPerDir)) << dirs[d];
    ASSERT_TRUE(checks[d].list_status.ok()) << dirs[d];
    EXPECT_EQ(checks[d].entries, static_cast<size_t>(kFilesPerDir)) << dirs[d];
  }
  // The mkdirs' own deferred updates against "/" drain the same way.
  std::vector<DirCheck> root_check(1);
  RunWindow(fs, sim::Milliseconds(100),
            CheckDirs(fs.client.get(), {"/"}, &root_check));
  ASSERT_TRUE(root_check[0].stat_status.ok());
  EXPECT_EQ(root_check[0].size, static_cast<uint64_t>(kDirs));
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);

  // And the cluster keeps serving through the shortened chain.
  ASSERT_TRUE(fs.Create("/d0/after_failover").ok());
  auto sd = fs.StatDir("/d0");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, static_cast<uint64_t>(kFilesPerDir) + 1);
}

// The dedicated tracker is a single point of failure: while it is down,
// inserts degrade to synchronous fallbacks (correct but slow). Operator
// recovery restarts it empty and reconstructs the set from the servers'
// pending change-logs, after which reads observe every deferred update.
TEST(SwitchFsFault, DedicatedTrackerCrashRecoveryRebuildsDirtySet) {
  ClusterConfig cfg = SmallClusterConfig();
  cfg.tracker = TrackerMode::kDedicatedServer;
  cfg.server_template.push_idle_timeout = sim::Seconds(100);
  cfg.server_template.owner_quiet_period = sim::Seconds(100);
  cfg.server_template.push_mtu_entries = 1000000;
  FsHarness fs(cfg);

  // Setup + 8 pre-crash creates whose deferred updates stay pending.
  std::vector<Status> pre(10, InternalError(""));
  RunWindow(fs, sim::Milliseconds(20),
            [](SwitchFsClient* c, std::vector<Status>* out) -> sim::Task<void> {
              (*out)[0] = co_await c->Mkdir("/d");
              (*out)[1] = co_await c->Mkdir("/e");
              for (int i = 0; i < 8; ++i) {
                (*out)[2 + i] = co_await c->Create("/d/pre" + std::to_string(i));
              }
            }(fs.client.get(), &pre));
  for (const Status& s : pre) {
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  ASSERT_GT(fs.cluster.TotalPendingChangeLogEntries(), 0u);

  fs.cluster.tracker()->Crash();
  // Ops during the outage succeed via the synchronous fallback (against a
  // different directory so /d's backlog is untouched by the fallback flush).
  std::vector<Status> during(4, InternalError(""));
  RunWindow(fs, sim::Milliseconds(100),
            [](SwitchFsClient* c, std::vector<Status>* out) -> sim::Task<void> {
              for (size_t i = 0; i < out->size(); ++i) {
                (*out)[i] = co_await c->Create("/e/x" + std::to_string(i));
              }
            }(fs.client.get(), &during));
  for (const Status& s : during) {
    ASSERT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_GT(fs.cluster.TotalStats().fallbacks, 0u);

  // Operator-driven recovery: restart + reconstruct from server snapshots.
  bool recovered = false;
  RunWindow(fs, sim::Milliseconds(100),
            [](Cluster* c, bool* out) -> sim::Task<void> {
              co_await c->dedicated_tracker()->RecoverAndRebuild();
              *out = true;
            }(&fs.cluster, &recovered));
  ASSERT_TRUE(recovered);
  EXPECT_GT(fs.cluster.dedicated_tracker()->reconstructed_entries(), 0u);

  // Reads now observe every pre-crash deferred update via the rebuilt set.
  std::vector<DirCheck> checks(3);
  RunWindow(fs, sim::Milliseconds(100),
            CheckDirs(fs.client.get(), {"/d", "/e", "/"}, &checks));
  ASSERT_TRUE(checks[0].stat_status.ok());
  EXPECT_EQ(checks[0].size, 8u);
  EXPECT_EQ(checks[0].entries, 8u);
  ASSERT_TRUE(checks[1].stat_status.ok());
  EXPECT_EQ(checks[1].size, 4u);
  ASSERT_TRUE(checks[2].stat_status.ok());
  EXPECT_EQ(checks[2].size, 2u);
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);

  // Keeps serving post-recovery — and the full drain inside these helpers
  // retires the parked long timers so teardown is quiescent.
  ASSERT_TRUE(fs.Create("/d/after_recovery").ok());
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 9u);
}

TEST(SwitchFsFault, ReconfigurationMigratesAndKeepsServing) {
  // §5.5/§A.3: stop-the-world reconfiguration. Add a server; all metadata
  // must remain reachable and balanced afterward.
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(fs.Create("/d/f" + std::to_string(i)).ok());
  }
  const uint32_t before = fs.cluster.ServerCount();
  fs.Run(fs.cluster.AddServerAndRebalance());
  EXPECT_EQ(fs.cluster.ServerCount(), before + 1);
  // New server owns some portion of the namespace.
  EXPECT_GT(fs.cluster.server(before).KvSize(), 0u);
  // Everything is still reachable; ops keep working.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(fs.Stat("/d/f" + std::to_string(i)).ok()) << i;
  }
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 40u);
  ASSERT_TRUE(fs.Create("/d/post_reconfig").ok());
  ASSERT_TRUE(fs.Unlink("/d/f0").ok());
  sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 40u);
}

}  // namespace
}  // namespace switchfs::core
