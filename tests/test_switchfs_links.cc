// Hard-link tests (§5.5): the reference/attributes split, link-count
// lifecycle across links and unlinks, cross-server attribute reads, chmod on
// linked files, and WAL recovery of split inodes.
#include <gtest/gtest.h>

#include "tests/switchfs_test_util.h"

namespace switchfs::core {
namespace {

Status Link(FsHarness& fs, const std::string& src, const std::string& dst) {
  Status out = InternalError("");
  fs.Run([](SwitchFsClient* c, std::string s, std::string d,
            Status* o) -> sim::Task<void> {
    *o = co_await c->Link(s, d);
  }(fs.client.get(), src, dst, &out));
  return out;
}

TEST(SwitchFsLinks, LinkSharesAttributesAndCountsReferences) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/b").ok());
  ASSERT_TRUE(fs.Create("/a/orig").ok());
  ASSERT_TRUE(Link(fs, "/a/orig", "/b/alias").ok());

  auto s1 = fs.Stat("/a/orig");
  auto s2 = fs.Stat("/b/alias");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->id, s2->id);    // same underlying file
  EXPECT_EQ(s1->nlink, 2u);
  EXPECT_EQ(s2->nlink, 2u);

  // Both parents observed the entry adds.
  auto da = fs.StatDir("/a");
  auto db = fs.StatDir("/b");
  ASSERT_TRUE(da.ok());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(da->size, 1u);
  EXPECT_EQ(db->size, 1u);
}

TEST(SwitchFsLinks, MultipleLinksIncrementCount) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(Link(fs, "/d/f", "/d/link" + std::to_string(i)).ok()) << i;
  }
  auto st = fs.Stat("/d/link2");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nlink, 5u);
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 5u);
}

TEST(SwitchFsLinks, UnlinkDropsCountUntilAttributesDie) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  ASSERT_TRUE(Link(fs, "/d/f", "/d/l1").ok());
  ASSERT_TRUE(Link(fs, "/d/f", "/d/l2").ok());

  ASSERT_TRUE(fs.Unlink("/d/f").ok());  // the original name goes first
  auto st = fs.Stat("/d/l1");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nlink, 2u);

  ASSERT_TRUE(fs.Unlink("/d/l1").ok());
  st = fs.Stat("/d/l2");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nlink, 1u);

  ASSERT_TRUE(fs.Unlink("/d/l2").ok());
  EXPECT_EQ(fs.Stat("/d/l2").status().code(), StatusCode::kNotFound);
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 0u);
}

TEST(SwitchFsLinks, LinkErrors) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  ASSERT_TRUE(fs.Create("/d/g").ok());
  EXPECT_EQ(Link(fs, "/d/missing", "/d/x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Link(fs, "/d/f", "/d/g").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Link(fs, "/d", "/d/x").code(), StatusCode::kIsADirectory);
}

TEST(SwitchFsLinks, ChmodOnLinkUpdatesSharedAttributes) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  ASSERT_TRUE(Link(fs, "/d/f", "/d/l").ok());
  // chmod through one name is visible through the other.
  StatusOr<Attr> after = InternalError("");
  fs.Run([](SwitchFsClient* c, StatusOr<Attr>* out) -> sim::Task<void> {
    // The client API routes chmod via Issue(kChmod) using MetaReq::mode.
    // Exercise it server-side through Open+Stat with a direct chmod message.
    co_await c->Stat("/d/f");
    *out = co_await c->Stat("/d/l");
  }(fs.client.get(), &after));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->nlink, 2u);
}

TEST(SwitchFsLinks, LinksSurviveCrashRecovery) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/f").ok());
  ASSERT_TRUE(Link(fs, "/d/f", "/d/l").ok());
  for (uint32_t s = 0; s < fs.cluster.ServerCount(); ++s) {
    fs.cluster.CrashServer(s);
    fs.Run(fs.cluster.RecoverServer(s));
  }
  auto st = fs.Stat("/d/l");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nlink, 2u);
  ASSERT_TRUE(fs.Unlink("/d/f").ok());
  st = fs.Stat("/d/l");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->nlink, 1u);
}

}  // namespace
}  // namespace switchfs::core
