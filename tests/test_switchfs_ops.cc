// SwitchFS protocol tests: the asynchronous double-inode operations
// (§5.2.1), directory reads with aggregation (§5.2.2), rmdir (§5.2.3),
// rename, and POSIX visibility semantics (an operation's effects are visible
// to every operation issued after it returns — paper §A.2 Property 2).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/core/cluster.h"
#include "src/tracker/replicated_tracker.h"
#include "src/tracker/tracker_server.h"
#include "tests/switchfs_test_util.h"

namespace switchfs::core {
namespace {

TEST(SwitchFsOps, MkdirCreateStatRoundTrip) {
  FsHarness fs;
  EXPECT_TRUE(fs.Mkdir("/a").ok());
  EXPECT_TRUE(fs.Create("/a/f1").ok());
  auto st = fs.Stat("/a/f1");
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(st->is_dir());
  auto sd = fs.StatDir("/a");
  ASSERT_TRUE(sd.ok());
  EXPECT_TRUE(sd->is_dir());
  EXPECT_EQ(sd->size, 1u);
}

TEST(SwitchFsOps, CreateIsVisibleToImmediateStatDir) {
  // The core asynchronous-update guarantee: even though the parent update is
  // deferred, a statdir issued right after create returns must observe it.
  FsHarness fs;
  Status create_status = InternalError("");
  StatusOr<Attr> statdir_result = InternalError("");
  fs.Run([](SwitchFsClient* c, Status* cs,
            StatusOr<Attr>* sd) -> sim::Task<void> {
    (void)co_await c->Mkdir("/dir");
    *cs = co_await c->Create("/dir/file");
    *sd = co_await c->StatDir("/dir");  // no delay in between
  }(fs.client.get(), &create_status, &statdir_result));
  EXPECT_TRUE(create_status.ok());
  ASSERT_TRUE(statdir_result.ok());
  EXPECT_EQ(statdir_result->size, 1u);
  // The aggregation path must actually have been exercised at least once
  // (mkdir /dir marks the root scattered, create marks /dir scattered).
  EXPECT_GE(fs.cluster.TotalStats().aggregations, 1u);
}

TEST(SwitchFsOps, ReaddirListsAllCreatedFiles) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  std::set<std::string> expected;
  for (int i = 0; i < 25; ++i) {
    const std::string name = "f" + std::to_string(i);
    ASSERT_TRUE(fs.Create("/d/" + name).ok());
    expected.insert(name);
  }
  auto entries = fs.Readdir("/d");
  ASSERT_TRUE(entries.ok());
  std::set<std::string> got;
  for (const DirEntry& e : *entries) {
    got.insert(e.name);
    EXPECT_EQ(e.type, FileType::kFile);
  }
  EXPECT_EQ(got, expected);
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 25u);
}

TEST(SwitchFsOps, CreateExistingFails) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Create("/a/f").ok());
  EXPECT_EQ(fs.Create("/a/f").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(fs.Mkdir("/a").code(), StatusCode::kAlreadyExists);
}

TEST(SwitchFsOps, StatMissingFails) {
  FsHarness fs;
  EXPECT_EQ(fs.Stat("/nope").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  EXPECT_EQ(fs.Stat("/a/nope").status().code(), StatusCode::kNotFound);
  // Missing intermediate directory.
  EXPECT_EQ(fs.Create("/b/c/d").code(), StatusCode::kNotFound);
}

TEST(SwitchFsOps, UnlinkRemovesAndUpdatesParent) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Create("/a/f").ok());
  ASSERT_TRUE(fs.Unlink("/a/f").ok());
  EXPECT_EQ(fs.Stat("/a/f").status().code(), StatusCode::kNotFound);
  auto sd = fs.StatDir("/a");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 0u);
  EXPECT_EQ(fs.Unlink("/a/f").code(), StatusCode::kNotFound);
  // Unlink of a directory is EISDIR.
  EXPECT_EQ(fs.Unlink("/a").code(), StatusCode::kIsADirectory);
}

TEST(SwitchFsOps, RmdirEnforcesEmptiness) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Create("/a/f").ok());
  // Deferred create must be observed by the rmdir emptiness check even
  // though the parent inode was never read in between (Fig 6 step 7).
  EXPECT_EQ(fs.Rmdir("/a").code(), StatusCode::kNotEmpty);
  ASSERT_TRUE(fs.Unlink("/a/f").ok());
  EXPECT_TRUE(fs.Rmdir("/a").ok());
  EXPECT_EQ(fs.StatDir("/a").status().code(), StatusCode::kNotFound);
  // Operations under the removed directory fail after cache invalidation.
  EXPECT_EQ(fs.Create("/a/g").code(), StatusCode::kNotFound);
}

TEST(SwitchFsOps, RmdirOfRootAndMissing) {
  FsHarness fs;
  EXPECT_EQ(fs.Rmdir("/gone").code(), StatusCode::kNotFound);
  ASSERT_TRUE(fs.Create("/file").ok());
  EXPECT_EQ(fs.Rmdir("/file").code(), StatusCode::kNotADirectory);
}

TEST(SwitchFsOps, DeepPathsResolve) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/a/b").ok());
  ASSERT_TRUE(fs.Mkdir("/a/b/c").ok());
  ASSERT_TRUE(fs.Create("/a/b/c/file").ok());
  auto st = fs.Stat("/a/b/c/file");
  ASSERT_TRUE(st.ok());
  auto sd = fs.StatDir("/a/b/c");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 1u);
  auto sb = fs.StatDir("/a/b");
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(sb->size, 1u);  // contains only "c"
}

TEST(SwitchFsOps, OpenCloseWork) {
  FsHarness fs;
  ASSERT_TRUE(fs.Create("/f").ok());
  StatusOr<Attr> open_result = InternalError("");
  Status close_status = InternalError("");
  fs.Run([](SwitchFsClient* c, StatusOr<Attr>* o, Status* cl) -> sim::Task<void> {
    *o = co_await c->Open("/f");
    *cl = co_await c->Close("/f");
  }(fs.client.get(), &open_result, &close_status));
  EXPECT_TRUE(open_result.ok());
  EXPECT_TRUE(close_status.ok());
  StatusOr<Attr> missing = InternalError("");
  fs.Run([](SwitchFsClient* c, StatusOr<Attr>* o) -> sim::Task<void> {
    *o = co_await c->Open("/missing");
  }(fs.client.get(), &missing));
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SwitchFsOps, MtimeAdvancesOnCreate) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  auto before = fs.StatDir("/a");
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(fs.Create("/a/f").ok());
  auto after = fs.StatDir("/a");
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->mtime, before->mtime);
}

TEST(SwitchFsOps, DirtySetTransitionsNormalScatteredNormal) {
  // Fig 3: directories transition normal -> scattered on update and back to
  // normal once a read aggregates.
  ClusterConfig cfg = SmallClusterConfig();
  // Long quiet period so the proactive aggregation doesn't race the test.
  cfg.server_template.owner_quiet_period = sim::Milliseconds(500);
  cfg.server_template.push_idle_timeout = sim::Milliseconds(500);
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/a").ok());

  const auto* dir = fs.cluster.preloaded("/");
  ASSERT_NE(dir, nullptr);

  // Issue a create and check the switch state before any read.
  Status create_status = InternalError("");
  fs.Run([](SwitchFsClient* c, Status* out) -> sim::Task<void> {
    *out = co_await c->Create("/a/f");
  }(fs.client.get(), &create_status));
  ASSERT_TRUE(create_status.ok());

  // After the full drain the proactive path has NOT yet aggregated (long
  // timers), so /a's fingerprint is still in the dirty set... unless the
  // quiet timer fired. With 500ms timers and a drained queue the timer DID
  // fire during Run(). Instead verify the end state: after a statdir the
  // fingerprint must be absent.
  auto sd = fs.StatDir("/a");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 1u);
  const auto* a = fs.cluster.preloaded("/a");
  (void)a;
  // The directory fingerprint of /a is derived from (root id, "a").
  const psw::Fingerprint fp = FingerprintOf(RootId(), "a");
  EXPECT_FALSE(fs.cluster.data_plane()->Contains(fp));
}

TEST(SwitchFsOps, ConcurrentCreatesInOneDirectoryAllLand) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/hot").ok());
  constexpr int kClients = 8;
  constexpr int kPerClient = 20;
  std::vector<std::unique_ptr<SwitchFsClient>> clients;
  int ok_count = 0;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(fs.cluster.MakeClient());
  }
  for (int c = 0; c < kClients; ++c) {
    sim::Spawn([](SwitchFsClient* cl, int id, int n, int* ok) -> sim::Task<void> {
      for (int i = 0; i < n; ++i) {
        Status s = co_await cl->Create("/hot/c" + std::to_string(id) + "_" +
                                       std::to_string(i));
        if (s.ok()) {
          (*ok)++;
        }
      }
    }(clients[c].get(), c, kPerClient, &ok_count));
  }
  fs.cluster.sim().Run();
  EXPECT_EQ(ok_count, kClients * kPerClient);
  auto sd = fs.StatDir("/hot");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, static_cast<uint64_t>(kClients * kPerClient));
  auto entries = fs.Readdir("/hot");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<size_t>(kClients * kPerClient));
  // No change-log entries may linger after the drain.
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);
}

TEST(SwitchFsOps, MixedCreateDeleteSameNamePreservesFifoOrder) {
  // §5.3: repeated insertions/removals of the same name must apply in commit
  // order (they share a change-log since (pid, name) hashing is stable).
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  Status s1 = InternalError(""), s2 = InternalError(""), s3 = InternalError("");
  fs.Run([](SwitchFsClient* c, Status* a, Status* b, Status* d) -> sim::Task<void> {
    *a = co_await c->Create("/d/x");
    *b = co_await c->Unlink("/d/x");
    *d = co_await c->Create("/d/x");
  }(fs.client.get(), &s1, &s2, &s3));
  EXPECT_TRUE(s1.ok());
  EXPECT_TRUE(s2.ok());
  EXPECT_TRUE(s3.ok());
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 1u);  // net effect: x exists once
  auto entries = fs.Readdir("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "x");
}

TEST(SwitchFsOps, RenameFileMovesInode) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/src").ok());
  ASSERT_TRUE(fs.Mkdir("/dst").ok());
  ASSERT_TRUE(fs.Create("/src/f").ok());
  ASSERT_TRUE(fs.Rename("/src/f", "/dst/g").ok());
  EXPECT_EQ(fs.Stat("/src/f").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(fs.Stat("/dst/g").ok());
  auto src = fs.StatDir("/src");
  ASSERT_TRUE(src.ok());
  EXPECT_EQ(src->size, 0u);
  auto dst = fs.StatDir("/dst");
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(dst->size, 1u);
}

TEST(SwitchFsOps, RenameDirectoryMovesSubtree) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/a/sub").ok());
  ASSERT_TRUE(fs.Create("/a/sub/f").ok());
  ASSERT_TRUE(fs.Mkdir("/b").ok());
  ASSERT_TRUE(fs.Rename("/a/sub", "/b/moved").ok());
  EXPECT_EQ(fs.StatDir("/a/sub").status().code(), StatusCode::kNotFound);
  auto moved = fs.StatDir("/b/moved");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved->size, 1u);
  EXPECT_TRUE(fs.Stat("/b/moved/f").ok());
  EXPECT_EQ(fs.Stat("/a/sub/f").status().code(), StatusCode::kNotFound);
}

TEST(SwitchFsOps, RenameRejectsOrphanedLoop) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Mkdir("/a/b").ok());
  // Moving /a under its own descendant /a/b would orphan the loop.
  EXPECT_EQ(fs.Rename("/a", "/a/b/c").code(), StatusCode::kCrossDevice);
}

TEST(SwitchFsOps, RenameMissingSourceOrExistingDestFails) {
  FsHarness fs;
  ASSERT_TRUE(fs.Mkdir("/d").ok());
  ASSERT_TRUE(fs.Create("/d/exists").ok());
  EXPECT_EQ(fs.Rename("/d/missing", "/d/x").code(), StatusCode::kNotFound);
  ASSERT_TRUE(fs.Create("/d/src").ok());
  EXPECT_EQ(fs.Rename("/d/src", "/d/exists").code(),
            StatusCode::kAlreadyExists);
}

TEST(SwitchFsOps, ManyDirectoriesManyFiles) {
  FsHarness fs;
  constexpr int kDirs = 8;
  constexpr int kFiles = 12;
  for (int d = 0; d < kDirs; ++d) {
    ASSERT_TRUE(fs.Mkdir("/dir" + std::to_string(d)).ok());
  }
  for (int d = 0; d < kDirs; ++d) {
    for (int f = 0; f < kFiles; ++f) {
      ASSERT_TRUE(fs.Create("/dir" + std::to_string(d) + "/f" +
                            std::to_string(f)).ok());
    }
  }
  for (int d = 0; d < kDirs; ++d) {
    auto sd = fs.StatDir("/dir" + std::to_string(d));
    ASSERT_TRUE(sd.ok());
    EXPECT_EQ(sd->size, static_cast<uint64_t>(kFiles));
  }
  auto root = fs.StatDir("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root->size, static_cast<uint64_t>(kDirs));
}

TEST(SwitchFsOps, PreloadedNamespaceIsProtocolConsistent) {
  // Bench preloads must be indistinguishable from protocol-created state.
  FsHarness fs;
  fs.cluster.PreloadMkdir("/data");
  for (int i = 0; i < 50; ++i) {
    fs.cluster.PreloadFile("/data/img" + std::to_string(i));
  }
  fs.cluster.WarmClient(*fs.client);
  auto sd = fs.StatDir("/data");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 50u);
  EXPECT_TRUE(fs.Stat("/data/img7").ok());
  ASSERT_TRUE(fs.Unlink("/data/img7").ok());
  ASSERT_TRUE(fs.Create("/data/img50").ok());
  sd = fs.StatDir("/data");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 50u);
  // rmdir of a preloaded non-empty dir fails.
  EXPECT_EQ(fs.Rmdir("/data").code(), StatusCode::kNotEmpty);
}

TEST(SwitchFsOps, OwnerServerTrackerModeWorks) {
  ClusterConfig cfg = SmallClusterConfig();
  cfg.tracker = TrackerMode::kOwnerServer;
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Create("/a/f").ok());
  auto sd = fs.StatDir("/a");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 1u);
}

TEST(SwitchFsOps, DedicatedTrackerModeWorks) {
  ClusterConfig cfg = SmallClusterConfig();
  cfg.tracker = TrackerMode::kDedicatedServer;
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Create("/a/f").ok());
  auto sd = fs.StatDir("/a");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 1u);
  EXPECT_GT(fs.cluster.tracker()->ops(), 0u);
}

TEST(SwitchFsOps, ReplicatedTrackerModeWorks) {
  ClusterConfig cfg = SmallClusterConfig();
  cfg.tracker = TrackerMode::kReplicated;
  cfg.tracker_replicas = 3;
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Create("/a/f").ok());
  auto sd = fs.StatDir("/a");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 1u);
  auto* rep = fs.cluster.replicated_tracker();
  ASSERT_NE(rep, nullptr);
  // Writes propagated down the whole chain: every replica processed ops and
  // the tail answered the read query.
  for (int i = 0; i < rep->replica_count(); ++i) {
    EXPECT_GT(rep->node(i).ops(), 0u) << "replica " << i;
  }
  EXPECT_EQ(rep->failovers(), 0u);
}

TEST(SwitchFsOps, SynchronousBaselineModeWorks) {
  ClusterConfig cfg = SmallClusterConfig();
  cfg.async_updates = false;
  FsHarness fs(cfg);
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  ASSERT_TRUE(fs.Create("/a/f").ok());
  auto sd = fs.StatDir("/a");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 1u);
  // Synchronous mode never defers: no aggregations should be needed for the
  // statdir (the quiet-timer path is disabled).
  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);
}

}  // namespace
}  // namespace switchfs::core
