// Tests for coroutine synchronization primitives: mutual exclusion, FIFO
// fairness, reader batching, handoff correctness under racing acquires, and
// the OneShot completion slot used by the RPC layer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace switchfs::sim {
namespace {

TEST(Mutex, ProvidesMutualExclusion) {
  Simulator sim;
  Mutex mu(&sim);
  int in_critical = 0;
  int max_in_critical = 0;
  auto worker = [&](SimTime hold) -> Task<void> {
    auto guard = co_await mu.Acquire();
    in_critical++;
    max_in_critical = std::max(max_in_critical, in_critical);
    co_await Delay(&sim, hold);
    in_critical--;
  };
  for (int i = 0; i < 10; ++i) {
    Spawn(worker(7));
  }
  sim.Run();
  EXPECT_EQ(max_in_critical, 1);
  EXPECT_EQ(sim.Now(), 70);
  EXPECT_FALSE(mu.locked());
}

TEST(Mutex, FifoOrder) {
  Simulator sim;
  Mutex mu(&sim);
  std::vector<int> order;
  auto worker = [&](int id) -> Task<void> {
    auto guard = co_await mu.Acquire();
    order.push_back(id);
    co_await Delay(&sim, 1);
  };
  // Stagger arrival so the queue order is 0,1,2,3,4.
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(i, [&, i] { Spawn(worker(i)); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Mutex, GuardMoveTransfersOwnership) {
  Simulator sim;
  Mutex mu(&sim);
  Spawn([](Simulator* s, Mutex* m) -> Task<void> {
    auto g1 = co_await m->Acquire();
    Mutex::Guard g2 = std::move(g1);
    EXPECT_FALSE(g1.held());
    EXPECT_TRUE(g2.held());
    EXPECT_TRUE(m->locked());
    co_await Delay(s, 1);
  }(&sim, &mu));
  sim.Run();
  EXPECT_FALSE(mu.locked());
}

TEST(SharedMutex, ReadersShareWritersExclude) {
  Simulator sim;
  SharedMutex mu(&sim);
  int readers_in = 0;
  int max_readers = 0;
  bool writer_in = false;
  auto reader = [&]() -> Task<void> {
    auto g = co_await mu.AcquireShared();
    EXPECT_FALSE(writer_in);
    readers_in++;
    max_readers = std::max(max_readers, readers_in);
    co_await Delay(&sim, 10);
    readers_in--;
  };
  auto writer = [&]() -> Task<void> {
    auto g = co_await mu.AcquireExclusive();
    EXPECT_EQ(readers_in, 0);
    EXPECT_FALSE(writer_in);
    writer_in = true;
    co_await Delay(&sim, 10);
    writer_in = false;
  };
  Spawn(reader());
  Spawn(reader());
  sim.ScheduleAt(2, [&] { Spawn(writer()); });
  sim.ScheduleAt(4, [&] { Spawn(reader()); });
  sim.Run();
  EXPECT_GE(max_readers, 2);
  EXPECT_EQ(mu.readers(), 0);
  EXPECT_FALSE(mu.has_writer());
}

TEST(SharedMutex, FifoPreventsReaderBypassOfQueuedWriter) {
  Simulator sim;
  SharedMutex mu(&sim);
  std::string order;
  auto reader = [&](char tag) -> Task<void> {
    auto g = co_await mu.AcquireShared();
    order.push_back(tag);
    co_await Delay(&sim, 10);
  };
  auto writer = [&](char tag) -> Task<void> {
    auto g = co_await mu.AcquireExclusive();
    order.push_back(tag);
    co_await Delay(&sim, 10);
  };
  sim.ScheduleAt(0, [&] { Spawn(reader('a')); });
  sim.ScheduleAt(1, [&] { Spawn(writer('W')); });
  // 'b' arrives while W is queued: FIFO means b runs after W even though the
  // lock is only reader-held at its arrival.
  sim.ScheduleAt(2, [&] { Spawn(reader('b')); });
  sim.Run();
  EXPECT_EQ(order, "aWb");
}

TEST(SharedMutex, BatchesConsecutiveQueuedReaders) {
  Simulator sim;
  SharedMutex mu(&sim);
  int concurrent = 0;
  int max_concurrent = 0;
  auto reader = [&]() -> Task<void> {
    auto g = co_await mu.AcquireShared();
    concurrent++;
    max_concurrent = std::max(max_concurrent, concurrent);
    co_await Delay(&sim, 10);
    concurrent--;
  };
  auto writer = [&]() -> Task<void> {
    auto g = co_await mu.AcquireExclusive();
    co_await Delay(&sim, 10);
  };
  sim.ScheduleAt(0, [&] { Spawn(writer()); });
  sim.ScheduleAt(1, [&] { Spawn(reader()); });
  sim.ScheduleAt(2, [&] { Spawn(reader()); });
  sim.ScheduleAt(3, [&] { Spawn(reader()); });
  sim.Run();
  EXPECT_EQ(max_concurrent, 3);  // all three admitted together after writer
}

TEST(Semaphore, LimitsConcurrencyAndHandsOffFairly) {
  Simulator sim;
  Semaphore sem(&sim, 2);
  int in = 0;
  int max_in = 0;
  std::vector<int> order;
  auto worker = [&](int id) -> Task<void> {
    co_await sem.Acquire();
    order.push_back(id);
    in++;
    max_in = std::max(max_in, in);
    co_await Delay(&sim, 10);
    in--;
    sem.Release();
  };
  for (int i = 0; i < 6; ++i) {
    sim.ScheduleAt(i, [&, i] { Spawn(worker(i)); });
  }
  sim.Run();
  EXPECT_EQ(max_in, 2);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(sem.permits(), 2);
}

TEST(Semaphore, NoPermitTheftDuringHandoff) {
  Simulator sim;
  Semaphore sem(&sim, 1);
  std::vector<int> order;
  auto worker = [&](int id, SimTime hold) -> Task<void> {
    co_await sem.Acquire();
    order.push_back(id);
    co_await Delay(&sim, hold);
    sem.Release();
  };
  Spawn(worker(0, 10));
  sim.ScheduleAt(1, [&] { Spawn(worker(1, 10)); });
  // Arrives exactly when worker 0 releases; must not jump ahead of worker 1.
  sim.ScheduleAt(10, [&] { Spawn(worker(2, 10)); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ManualEvent, ReleasesAllWaiters) {
  Simulator sim;
  ManualEvent ev(&sim);
  int released = 0;
  auto waiter = [&]() -> Task<void> {
    co_await ev.Wait();
    released++;
  };
  for (int i = 0; i < 5; ++i) {
    Spawn(waiter());
  }
  sim.ScheduleAt(50, [&] { ev.Set(); });
  sim.Run();
  EXPECT_EQ(released, 5);
  // Waiting on an already-set event completes immediately.
  Spawn(waiter());
  sim.Run();
  EXPECT_EQ(released, 6);
}

TEST(OneShot, FirstSetWins) {
  Simulator sim;
  OneShot<int> slot(&sim);
  EXPECT_TRUE(slot.Set(1));
  EXPECT_FALSE(slot.Set(2));
  int got = 0;
  Spawn([](OneShot<int>* s, int* out) -> Task<void> {
    *out = co_await s->Wait();
  }(&slot, &got));
  sim.Run();
  EXPECT_EQ(got, 1);
}

TEST(OneShot, WaiterResumesOnSet) {
  Simulator sim;
  OneShot<int> slot(&sim);
  int got = 0;
  SimTime resumed_at = 0;
  Spawn([](Simulator* sp, OneShot<int>* s, int* out, SimTime* at) -> Task<void> {
    *out = co_await s->Wait();
    *at = sp->Now();
  }(&sim, &slot, &got, &resumed_at));
  sim.ScheduleAt(25, [&] { slot.Set(7); });
  sim.Run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(resumed_at, 25);
}

TEST(JoinCounter, WaitsForAllCompletions) {
  Simulator sim;
  JoinCounter join(&sim, 3);
  bool done = false;
  Spawn([](JoinCounter* j, bool* d) -> Task<void> {
    co_await j->Wait();
    *d = true;
  }(&join, &done));
  sim.ScheduleAt(1, [&] { join.Done(); });
  sim.ScheduleAt(2, [&] { join.Done(); });
  sim.RunUntil(5);
  EXPECT_FALSE(done);
  sim.ScheduleAt(6, [&] { join.Done(); });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(CpuPool, EnforcesCoreCountAndTracksBusyTime) {
  Simulator sim;
  CpuPool cpu(&sim, 2);
  int done = 0;
  auto job = [&]() -> Task<void> {
    co_await cpu.Run(100);
    done++;
  };
  for (int i = 0; i < 4; ++i) {
    Spawn(job());
  }
  sim.Run();
  EXPECT_EQ(done, 4);
  // 4 jobs x 100ns on 2 cores = 200ns wall, 400ns busy.
  EXPECT_EQ(sim.Now(), 200);
  EXPECT_EQ(cpu.busy_time(), 400);
  EXPECT_DOUBLE_EQ(cpu.Utilization(200), 1.0);
}

TEST(CpuPool, SingleCoreSerializes) {
  Simulator sim;
  CpuPool cpu(&sim, 1);
  std::vector<SimTime> finish_times;
  auto job = [&]() -> Task<void> {
    co_await cpu.Run(10);
    finish_times.push_back(sim.Now());
  };
  for (int i = 0; i < 3; ++i) {
    Spawn(job());
  }
  sim.Run();
  EXPECT_EQ(finish_times, (std::vector<SimTime>{10, 20, 30}));
}

}  // namespace
}  // namespace switchfs::sim
