// Unit tests for the tracker subsystem (src/tracker/): each tracker
// implementation is driven against a bare ServerContext on a simulated
// network — no Cluster, no SwitchFsClient — covering the ROADMAP fault
// paths (insert-ack retry exhaustion, dedicated-tracker overflow) plus the
// chain-replicated group's propagation, lazy failure detection, and
// dirty-set reconstruction.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/core/keys.h"
#include "src/tracker/dedicated_tracker.h"
#include "src/tracker/replicated_tracker.h"
#include "src/tracker/switch_tracker.h"
#include "src/tracker/tracker_server.h"

namespace switchfs::tracker {
namespace {

class OneServerCluster : public core::ClusterContext {
 public:
  OneServerCluster() { ring_.AddServer(0); }
  void SetNode(net::NodeId n) { node_ = n; }
  const core::HashRing& ring() const override { return ring_; }
  net::NodeId ServerNode(uint32_t) const override { return node_; }
  uint32_t ServerCount() const override { return 1; }

 private:
  core::HashRing ring_;
  net::NodeId node_ = net::kInvalidNode;
};

// One metadata server's context over a plain L2 fabric, with a request
// handler that answers ScatteredSnapshotReq from the harness's change-logs
// (what tracker reconstruction collects).
class TrackerHarness {
 public:
  TrackerHarness()
      : net(&sim, &costs, /*seed=*/11),
        sw(costs.plain_switch_delay),
        cpu(&sim, config.cores),
        rpc(&sim, &net),
        vol(std::make_shared<core::ServerVolatile>(&sim)) {
    net.SetSwitch(&sw);
    sw.SetServerGroup({rpc.id()});
    cluster.SetNode(rpc.id());
    ctx = core::ServerContext{&sim,    &net, &cluster, &durable, &costs,
                              &config, &cpu, &rpc,     &stats,   nullptr};
    rpc.SetRequestHandler([this](net::Packet p) {
      if (p.body != nullptr && p.body->type == core::ScatteredSnapshotReq::kType) {
        auto resp = std::make_shared<core::ScatteredSnapshotResp>();
        for (size_t i = 0; i < vol->num_shards(); ++i) {
          for (const auto& [fp, dirs] : vol->ShardAt(i).changelogs) {
            for (const auto& [dir, log] : dirs) {
              if (!log.empty()) {
                resp->fps.push_back(fp);
                break;
              }
            }
          }
        }
        rpc.Respond(p, resp);
      }
    });
  }

  // Appends a pending change-log entry so `fp` counts as scattered.
  void AddPendingEntry(psw::Fingerprint fp, uint64_t tag) {
    core::InodeId dir;
    dir.w[0] = tag;
    dir.w[3] = 2;
    core::ChangeLogEntry e;
    e.seq = 1;
    e.op = core::OpType::kCreate;
    e.name = "f";
    e.entry_type = core::FileType::kFile;
    e.size_delta = 1;
    vol->GetChangeLog(fp, dir).Restore(std::move(e));
  }

  InsertResult RunInsert(DirtyTracker& tracker, psw::Fingerprint fp) {
    InsertResult out = InsertResult::kPublished;
    core::InodeId dir;
    dir.w[0] = 1;
    dir.w[3] = 2;
    sim::Spawn([](DirtyTracker* t, TrackerHarness* h, psw::Fingerprint f,
                  core::InodeId d, InsertResult* o) -> sim::Task<void> {
      *o = co_await t->Insert(h->ctx, h->vol, f, d, nullptr, nullptr);
    }(&tracker, this, fp, dir, &out));
    sim.Run();
    return out;
  }

  sim::Simulator sim;
  sim::CostModel costs;
  net::Network net;
  net::PlainSwitch sw;
  core::ServerConfig config;
  core::DurableState durable;
  sim::CpuPool cpu;
  net::RpcEndpoint rpc;
  core::ServerStats stats;
  OneServerCluster cluster;
  core::ServerContext ctx;
  core::VolPtr vol;
};

// ROADMAP fault path: with nothing acking in-network inserts (plain switch,
// no data plane), the insert-ack retry budget runs out; the operation still
// completes (push path repairs visibility) and the wait state is cleaned up.
TEST(SwitchTrackerTest, InsertAckRetryExhaustionIsCountedAndCleanedUp) {
  TrackerHarness h;
  h.config.insert_max_attempts = 3;
  h.config.insert_ack_timeout = sim::Microseconds(50);
  SwitchTracker tracker;
  const InsertResult r = h.RunInsert(tracker, /*fp=*/1234);
  EXPECT_EQ(r, InsertResult::kDelivered);
  EXPECT_EQ(h.stats.insert_exhausted, 1u);
  EXPECT_TRUE(h.vol->op_waits.empty());
}

// ROADMAP fault path: a full dedicated tracker signals overflow, which the
// server turns into the synchronous-update fallback (§7.3.2 analog).
TEST(DedicatedTrackerTest, OverflowSignalsSynchronousFallback) {
  TrackerHarness h;
  TrackerServer server(&h.sim, &h.net, &h.costs);
  server.SetForceInsertOverflow(true);
  DedicatedTracker tracker(&h.sim, &h.net, &h.cluster, &h.costs, &server);
  EXPECT_EQ(h.RunInsert(tracker, 77), InsertResult::kOverflow);
  server.SetForceInsertOverflow(false);
  EXPECT_EQ(h.RunInsert(tracker, 77), InsertResult::kPublished);
  EXPECT_TRUE(server.dirty_set().Query(77));
}

// Satellite regression: a malformed / unknown-op packet must get an
// ok=false reply, not a silent drop that leaves the caller retransmitting.
TEST(TrackerServerTest, RepliesOkFalseToMalformedPackets) {
  TrackerHarness h;
  TrackerServer server(&h.sim, &h.net, &h.costs);
  Status status = InternalError("not run");
  bool ok_field = true;
  sim::Spawn([](TrackerHarness* hh, net::NodeId dst, Status* st,
                bool* ok) -> sim::Task<void> {
    net::CallOptions opts;
    opts.timeout = sim::Microseconds(200);
    opts.max_attempts = 3;
    auto r = co_await hh->rpc.Call(dst, net::MakeMsg<core::Ack>(), opts);
    *st = r.status();
    if (r.ok()) {
      if (const auto* resp = net::MsgAs<core::TrackerResp>(*r)) {
        *ok = resp->ok;
      }
    }
  }(&h, server.node_id(), &status, &ok_field));
  h.sim.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(ok_field);
  // The malformed packet was answered without a single retransmission.
  EXPECT_EQ(h.rpc.retransmits_sent(), 0u);
}

TEST(ReplicatedTrackerTest, WritesPropagateDownTheChain) {
  TrackerHarness h;
  ReplicatedTrackerConfig rc;
  rc.replicas = 3;
  ReplicatedTracker tracker(&h.sim, &h.net, &h.cluster, &h.costs, rc);
  EXPECT_EQ(h.RunInsert(tracker, 4242), InsertResult::kPublished);
  for (int i = 0; i < tracker.replica_count(); ++i) {
    EXPECT_TRUE(tracker.node(i).dirty_set().Query(4242)) << "replica " << i;
  }
  // Remove-with-seq propagates too.
  sim::Spawn([](ReplicatedTracker* t, TrackerHarness* hh) -> sim::Task<void> {
    net::Packet rm;
    rm.dst = hh->rpc.id();  // self-addressed stand-in for the multicast
    co_await t->RemoveAndMulticast(hh->ctx, hh->vol, 4242, /*seq=*/1, rm);
  }(&tracker, &h));
  h.sim.Run();
  for (int i = 0; i < tracker.replica_count(); ++i) {
    EXPECT_FALSE(tracker.node(i).dirty_set().Query(4242)) << "replica " << i;
  }
  EXPECT_EQ(tracker.failovers(), 0u);
}

// Head crash: the next insert's RPC budget expiring is the failure signal;
// failover drops the head, rewires the survivors, reconstructs the set from
// the server's pending change-logs, and the blocked insert then lands on
// the new head — nothing is lost.
TEST(ReplicatedTrackerTest, HeadCrashFailsOverAndReconstructs) {
  TrackerHarness h;
  ReplicatedTrackerConfig rc;
  rc.replicas = 3;
  ReplicatedTracker tracker(&h.sim, &h.net, &h.cluster, &h.costs, rc);

  // Pre-crash state: fp 7 acked through the chain and still pending in the
  // server's change-log (the durable scattered-key state).
  h.AddPendingEntry(7, /*tag=*/70);
  EXPECT_EQ(h.RunInsert(tracker, 7), InsertResult::kPublished);

  const int old_head = tracker.head_index();
  tracker.CrashNode(old_head);
  EXPECT_FALSE(tracker.node(old_head).alive());

  // Mid-burst insert of a fresh fingerprint: detects the dead head, waits
  // out the rebuild, and succeeds against the new chain.
  h.AddPendingEntry(9, /*tag=*/90);
  EXPECT_EQ(h.RunInsert(tracker, 9), InsertResult::kPublished);

  EXPECT_EQ(tracker.failovers(), 1u);
  EXPECT_FALSE(tracker.rebuilding());
  EXPECT_EQ(static_cast<int>(tracker.chain().size()), 2);
  EXPECT_NE(tracker.head_index(), old_head);
  EXPECT_GT(tracker.last_failover_duration(), 0);
  EXPECT_EQ(tracker.reconstructed_entries(), 2u);  // fps 7 and 9 re-collected
  for (int i : tracker.chain()) {
    EXPECT_TRUE(tracker.node(i).dirty_set().Query(7)) << "replica " << i;
    EXPECT_TRUE(tracker.node(i).dirty_set().Query(9)) << "replica " << i;
  }
}

// Regression: a dead TAIL must evict only the tail. The node above the dead
// tail burns its whole forward budget before replying chain_fault, so the
// upstream forward budgets must be strictly larger per depth — with equal
// budgets the head would time out on the healthy middle replica first and
// the failover would evict the wrong node (observed: two failovers, chain
// degraded 3 -> 1 with the middle alive but expelled).
TEST(ReplicatedTrackerTest, TailCrashEvictsOnlyTheTail) {
  TrackerHarness h;
  ReplicatedTrackerConfig rc;
  rc.replicas = 3;
  ReplicatedTracker tracker(&h.sim, &h.net, &h.cluster, &h.costs, rc);
  h.AddPendingEntry(11, /*tag=*/110);
  EXPECT_EQ(h.RunInsert(tracker, 11), InsertResult::kPublished);

  const int tail = tracker.tail_index();
  const int mid = tracker.chain()[1];
  tracker.CrashNode(tail);

  EXPECT_EQ(h.RunInsert(tracker, 12), InsertResult::kPublished);
  EXPECT_EQ(tracker.failovers(), 1u);
  ASSERT_EQ(tracker.chain().size(), 2u);
  EXPECT_TRUE(tracker.node(mid).alive());
  EXPECT_EQ(tracker.tail_index(), mid);  // the healthy middle became tail
  for (int i : tracker.chain()) {
    EXPECT_TRUE(tracker.node(i).dirty_set().Query(11)) << "replica " << i;
    EXPECT_TRUE(tracker.node(i).dirty_set().Query(12)) << "replica " << i;
  }
}

// Tail crash is detected by the client-side query path and resolves the
// same way; queries during/after the rebuild stay conservative.
TEST(ReplicatedTrackerTest, TailCrashDetectedByQueryPath) {
  TrackerHarness h;
  ReplicatedTrackerConfig rc;
  rc.replicas = 2;
  ReplicatedTracker tracker(&h.sim, &h.net, &h.cluster, &h.costs, rc);
  EXPECT_EQ(h.RunInsert(tracker, 5), InsertResult::kPublished);

  tracker.CrashNode(tracker.tail_index());

  core::MetaReq req;
  net::CallOptions opts;
  sim::Spawn([](ReplicatedTracker* t, TrackerHarness* hh, core::MetaReq* rq,
                net::CallOptions* op) -> sim::Task<void> {
    co_await t->ClientPreRead(hh->rpc, 5, *rq, *op);
  }(&tracker, &h, &req, &opts));
  h.sim.Run();

  // The failed query reported "scattered" (conservative) and kicked off the
  // failover; the surviving single-node chain still answers for fp 5.
  EXPECT_TRUE(req.scattered_hint);
  EXPECT_EQ(tracker.failovers(), 1u);
  EXPECT_EQ(static_cast<int>(tracker.chain().size()), 1);
  // fp 5 was reconstructed only if still pending at the server; it was not
  // (no change-log entry), so a fresh query reports clean — and that is
  // correct: nothing is pending anywhere.
  core::MetaReq req2;
  sim::Spawn([](ReplicatedTracker* t, TrackerHarness* hh, core::MetaReq* rq,
                net::CallOptions* op) -> sim::Task<void> {
    co_await t->ClientPreRead(hh->rpc, 5, *rq, *op);
  }(&tracker, &h, &req2, &opts));
  h.sim.Run();
  EXPECT_FALSE(req2.scattered_hint);
}

}  // namespace
}  // namespace switchfs::tracker
