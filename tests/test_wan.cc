// Geo-replication (src/wan/): split-brain convergence, catch-up after a
// replicator crash, duplicate-batch idempotency, star forwarding, and the
// phantom-dirent LWW regression (ROADMAP item 1 rider — the local cross-era
// resolver is the same stamp comparison the WAN apply uses).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/wan/geo.h"
#include "tests/switchfs_test_util.h"

namespace switchfs::core {
namespace {

wan::GeoConfig SmallGeoConfig(uint32_t clusters, uint64_t seed) {
  wan::GeoConfig g;
  g.num_clusters = clusters;
  g.cluster_template = SmallClusterConfig(4);
  g.seed = seed;
  g.link.latency = sim::Milliseconds(5);
  g.link.jitter = sim::Microseconds(200);
  g.replication.batch_interval = sim::Milliseconds(2);
  g.replication.ack_timeout = sim::Milliseconds(25);
  g.replication.max_backoff = sim::Milliseconds(100);
  return g;
}

// Per-cluster warmed clients + run/inspect helpers over a GeoCluster.
class GeoHarness {
 public:
  explicit GeoHarness(wan::GeoConfig cfg) : geo(std::move(cfg)) {}

  // Clients are created lazily so tests can preload the namespace first
  // (warming snapshots the preloaded path set).
  SwitchFsClient* client(uint32_t i) {
    if (clients_.size() < geo.size()) {
      clients_.resize(geo.size());
    }
    if (!clients_[i]) {
      clients_[i] = geo.cluster(i).MakeClient();
      geo.cluster(i).WarmClient(*clients_[i]);
    }
    return clients_[i].get();
  }

  // Serialized listing of `path` as cluster `i` sees it: sorted
  // "name/kind" lines — byte-identical across clusters iff the replicated
  // directories converged.
  std::string Listing(uint32_t i, const std::string& path) {
    StatusOr<std::vector<DirEntry>> out = InternalError("not run");
    sim::Spawn([](SwitchFsClient* c, std::string p,
                  StatusOr<std::vector<DirEntry>>* o) -> sim::Task<void> {
      *o = co_await c->Readdir(p);
    }(client(i), path, &out));
    geo.sim().Run();
    EXPECT_TRUE(out.ok()) << "cluster " << i << " readdir " << path;
    if (!out.ok()) {
      return "<readdir failed>";
    }
    std::vector<std::string> lines;
    for (const DirEntry& e : *out) {
      lines.push_back(e.name +
                      (e.type == FileType::kDirectory ? "/d" : "/f"));
    }
    std::sort(lines.begin(), lines.end());
    std::string s;
    for (const std::string& l : lines) {
      s += l;
      s += '\n';
    }
    return s;
  }

  uint64_t DirSize(uint32_t i, const std::string& path) {
    StatusOr<Attr> out = InternalError("not run");
    sim::Spawn([](SwitchFsClient* c, std::string p,
                  StatusOr<Attr>* o) -> sim::Task<void> {
      *o = co_await c->StatDir(p);
    }(client(i), path, &out));
    geo.sim().Run();
    EXPECT_TRUE(out.ok()) << "cluster " << i << " statdir " << path;
    return out.ok() ? out->size : 0;
  }

  wan::GeoCluster geo;

 private:
  std::vector<std::unique_ptr<SwitchFsClient>> clients_;
};

// ---------------------------------------------------------------------------
// Split-brain property sweep: two clusters accept concurrent writes to the
// same directory while partitioned — conflicting same-name creates plus
// unique-per-site traffic — and must converge to byte-identical listings
// after the heal, with the conflicts settled by LWW (wan_conflicts_lww > 0:
// at the cluster holding the newer write, the older arrival is dropped).
class SplitBrainSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SplitBrainSweep, ClustersConvergeAfterHeal) {
  const uint64_t seed = GetParam();
  GeoHarness h(SmallGeoConfig(2, seed));
  h.geo.PreloadDirAll("/shared");

  h.geo.SetPartitioned(0, 1, true);

  constexpr int kConflictNames = 8;
  constexpr int kUniqueNames = 8;
  std::vector<bool> done(2, false);
  for (uint32_t site = 0; site < 2; ++site) {
    sim::Spawn([](sim::Simulator* sm, SwitchFsClient* c, uint32_t site,
                  uint64_t seed, std::vector<bool>* done) -> sim::Task<void> {
      Rng rng(seed ^ (0x9e37ULL * (site + 1)));
      // Conflicting names: both sites create c0..c7 at interleaved commit
      // times, so for every name one site's write is strictly older.
      for (int k = 0; k < kConflictNames; ++k) {
        co_await sim::Delay(sm, sim::Microseconds(5 + rng.NextBelow(40)));
        (void)co_await c->Create("/shared/c" + std::to_string(k));
      }
      // Unique traffic, some of it unlinked again before the heal — the
      // remote must end up without those names (in-batch dedup ships only
      // the newest same-name write).
      for (int k = 0; k < kUniqueNames; ++k) {
        co_await sim::Delay(sm, sim::Microseconds(5 + rng.NextBelow(40)));
        const std::string path =
            "/shared/u" + std::to_string(site) + "_" + std::to_string(k);
        Status s = co_await c->Create(path);
        if (s.ok() && k % 4 == 3) {
          (void)co_await c->Unlink(path);
        }
      }
      (*done)[site] = true;
    }(&h.geo.sim(), h.client(site), site, seed, &done));
  }
  // While partitioned, ship retries keep the event queue alive — drive with
  // a deadline, then heal and quiesce.
  h.geo.sim().RunUntil(sim::Seconds(2));
  ASSERT_TRUE(done[0] && done[1]);
  EXPECT_GT(h.geo.TotalStats().wan_batches_shipped, 0u);

  h.geo.SetPartitioned(0, 1, false);
  h.geo.sim().Run();

  EXPECT_TRUE(h.geo.WanIdle());
  for (uint32_t i = 0; i < 2; ++i) {
    EXPECT_EQ(h.geo.cluster(i).TotalPendingChangeLogEntries(), 0u)
        << "cluster " << i;
  }

  const std::string l0 = h.Listing(0, "/shared");
  const std::string l1 = h.Listing(1, "/shared");
  EXPECT_FALSE(l0.empty());
  EXPECT_EQ(l0, l1) << "cluster 0:\n" << l0 << "cluster 1:\n" << l1;
  // Conflict names survived exactly once each; unique names replicated.
  for (int k = 0; k < kConflictNames; ++k) {
    const std::string needle = "c" + std::to_string(k) + "/f\n";
    EXPECT_NE(l0.find(needle), std::string::npos) << needle;
  }
  // Entry counts (size attribute) match the converged listings on both
  // sides — the presence-aware delta half of the LWW apply.
  const uint64_t entries =
      static_cast<uint64_t>(std::count(l0.begin(), l0.end(), '\n'));
  EXPECT_EQ(h.DirSize(0, "/shared"), entries);
  EXPECT_EQ(h.DirSize(1, "/shared"), entries);

  const auto st = h.geo.TotalStats();
  EXPECT_GT(st.wan_conflicts_lww, 0u);
  EXPECT_GT(st.wan_entries_applied, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitBrainSweep,
                         ::testing::Values(31, 32, 33, 34),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Duplicate delivery of the same batch (a retransmit, or a catch-up re-ship
// after the origin lost the ack) must ack again without re-applying.
TEST(WanApplier, DuplicateBatchIsIdempotent) {
  GeoHarness h(SmallGeoConfig(2, 7));
  h.geo.PreloadDirAll("/shared");
  const Cluster::PreloadedDir* dir = h.geo.cluster(1).preloaded("/shared");
  ASSERT_NE(dir, nullptr);

  wan::WanBatch batch;
  batch.origin_cluster = 0;
  batch.batch_seq = 1;
  core::WanEntry we;
  we.dir = dir->id;
  we.dir_fp = dir->fp;
  we.origin_cluster = 0;
  we.src_server = 2;
  we.entry.seq = 1;
  we.entry.timestamp = sim::Milliseconds(1);
  we.entry.op = OpType::kCreate;
  we.entry.name = "x";
  we.entry.entry_type = FileType::kFile;
  we.entry.size_delta = 1;
  batch.entries.push_back(we);

  int acks = 0;
  h.geo.applier(1).Deliver(batch, [&acks] { acks++; });
  h.geo.sim().Run();
  EXPECT_EQ(acks, 1);
  EXPECT_EQ(h.geo.cluster(1).TotalStats().wan_entries_applied, 1u);

  h.geo.applier(1).Deliver(batch, [&acks] { acks++; });
  h.geo.sim().Run();
  EXPECT_EQ(acks, 2);
  const auto st = h.geo.cluster(1).TotalStats();
  EXPECT_EQ(st.wan_entries_applied, 1u) << "duplicate must not re-apply";
  EXPECT_EQ(st.wan_catchup_replays, 1u);

  EXPECT_EQ(h.Listing(1, "/shared"), "x/f\n");
  EXPECT_EQ(h.DirSize(1, "/shared"), 1u);
  // No echo: the WAN replay entered through EnqueueWanApply, not the local
  // commit capture, so cluster 1 has nothing of its own to ship back.
  EXPECT_TRUE(h.geo.replicator(1).Idle());
  EXPECT_EQ(h.Listing(0, "/shared"), "");
}

// ---------------------------------------------------------------------------
// Replicator crash after the batch was delivered but before its ack made it
// home: the recovered daemon re-ships from the durable spool, the peer
// dedups on its per-origin watermark (wan_catchup_replays), and the world
// still converges with every entry applied exactly once.
TEST(WanReplicator, CrashCatchUpReplaysAreDeduped) {
  wan::GeoConfig cfg = SmallGeoConfig(2, 11);
  cfg.link.jitter = 0;  // deterministic single-step timeline
  GeoHarness h(cfg);
  h.geo.PreloadDirAll("/shared");

  constexpr int kFiles = 5;
  bool done = false;
  sim::Spawn([](SwitchFsClient* c, bool* done) -> sim::Task<void> {
    for (int k = 0; k < kFiles; ++k) {
      Status s = co_await c->Create("/shared/f" + std::to_string(k));
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    *done = true;
  }(h.client(0), &done));

  // Single-step until cluster 1 has applied origin 0's first batch — at
  // that exact moment its ack is in flight and the origin has not seen it.
  int safety = 0;
  while (h.geo.applier(1).watermark(0) == 0) {
    ASSERT_TRUE(h.geo.sim().Step()) << "drained before the batch applied";
    ASSERT_LT(++safety, 2000000);
  }
  ASSERT_TRUE(done);

  h.geo.replicator(0).Crash();
  h.geo.replicator(0).Recover();  // bumps the era, re-ships everything
  h.geo.sim().Run();

  const auto st1 = h.geo.cluster(1).TotalStats();
  EXPECT_GE(st1.wan_catchup_replays, 1u);
  EXPECT_EQ(st1.wan_entries_applied, static_cast<uint64_t>(kFiles));
  EXPECT_TRUE(h.geo.WanIdle());
  EXPECT_EQ(h.Listing(0, "/shared"), h.Listing(1, "/shared"));
  EXPECT_EQ(h.DirSize(1, "/shared"), static_cast<uint64_t>(kFiles));
}

// ---------------------------------------------------------------------------
// Star topology: a spoke's batches reach the other spoke through the hub,
// origin identity preserved; the origin never hears its own writes back.
TEST(WanStar, SpokeTrafficForwardsThroughHub) {
  GeoHarness h(SmallGeoConfig(3, 13));
  h.geo.PreloadDirAll("/shared");

  constexpr int kFiles = 6;
  sim::Spawn([](SwitchFsClient* c) -> sim::Task<void> {
    for (int k = 0; k < kFiles; ++k) {
      Status s = co_await c->Create("/shared/spoke1_" + std::to_string(k));
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
  }(h.client(1)));
  h.geo.sim().Run();

  EXPECT_TRUE(h.geo.WanIdle());
  const std::string l1 = h.Listing(1, "/shared");
  EXPECT_EQ(static_cast<int>(std::count(l1.begin(), l1.end(), '\n')), kFiles);
  EXPECT_EQ(h.Listing(0, "/shared"), l1);  // hub applied
  EXPECT_EQ(h.Listing(2, "/shared"), l1);  // forwarded to the other spoke
  EXPECT_GE(h.geo.applier(2).watermark(1), 1u) << "origin identity preserved";
  // Echo check: nothing came back to the origin as a WAN apply.
  EXPECT_EQ(h.geo.cluster(1).TotalStats().wan_entries_applied, 0u);
}

// ---------------------------------------------------------------------------
// Phantom-dirent regression (ROADMAP item 1 rider). The LOCAL change-log
// apply runs the same per-name LWW stamp comparison as the WAN path: an
// older write arriving after a newer same-name write — the cross-era
// inversion the rename-epoch machinery could not see — is dropped at the
// apply instead of materializing a phantom dirent.
TEST(PhantomDirentLww, StaleOlderWriteIsDroppedAtApply) {
  FsHarness fs;
  const Cluster::PreloadedDir& dir = fs.cluster.PreloadMkdir("/d");
  fs.cluster.WarmClient(*fs.client);

  // Plant a newer same-name write through the WAN apply leg: an unlink of
  // "x" stamped far in this cluster's future (as if another era/cluster
  // already settled the name).
  core::WanEntry we;
  we.dir = dir.id;
  we.dir_fp = dir.fp;
  we.origin_cluster = 9;
  we.src_server = 0;
  we.entry.seq = 1;
  we.entry.timestamp = sim::Seconds(100);
  we.entry.op = OpType::kUnlink;
  we.entry.name = "x";
  we.entry.entry_type = FileType::kFile;
  auto result = std::make_shared<core::WanApplyResult>();
  auto jc = std::make_shared<sim::JoinCounter>(&fs.cluster.sim(), 1);
  const uint32_t owner = fs.cluster.ring().Owner(dir.fp);
  fs.cluster.server(owner).EnqueueWanApply(we, result, jc);
  fs.cluster.sim().Run();
  ASSERT_EQ(result->applied, 1);

  // The local create commits (its inode exists) but its deferred dirent
  // apply carries an older commit timestamp — the resolver must drop it.
  ASSERT_TRUE(fs.Create("/d/x").ok());

  auto listing = fs.Readdir("/d");
  ASSERT_TRUE(listing.ok());
  EXPECT_TRUE(listing->empty())
      << "stale older create resurrected a settled name";
  auto sd = fs.StatDir("/d");
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->size, 0u);
  EXPECT_GE(fs.cluster.TotalStats().wan_conflicts_lww, 1u);
}

// With the resolver off (ServerConfig::lww_resolve=false — the A/B lever),
// the same sequence materializes the dirent: proves the gate is live.
TEST(PhantomDirentLww, LeverOffKeepsLegacyOrdering) {
  ClusterConfig cfg = SmallClusterConfig();
  cfg.server_template.lww_resolve = false;
  FsHarness fs(cfg);
  const Cluster::PreloadedDir& dir = fs.cluster.PreloadMkdir("/d");
  fs.cluster.WarmClient(*fs.client);

  core::WanEntry we;
  we.dir = dir.id;
  we.dir_fp = dir.fp;
  we.origin_cluster = 9;
  we.src_server = 0;
  we.entry.seq = 1;
  we.entry.timestamp = sim::Seconds(100);
  we.entry.op = OpType::kUnlink;
  we.entry.name = "x";
  we.entry.entry_type = FileType::kFile;
  auto result = std::make_shared<core::WanApplyResult>();
  auto jc = std::make_shared<sim::JoinCounter>(&fs.cluster.sim(), 1);
  fs.cluster.server(fs.cluster.ring().Owner(dir.fp))
      .EnqueueWanApply(we, result, jc);
  fs.cluster.sim().Run();

  ASSERT_TRUE(fs.Create("/d/x").ok());
  auto listing = fs.Readdir("/d");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 1u);
}

// ---------------------------------------------------------------------------
// Rename-storm with NAME REUSE across rename eras (derived from the PR-4
// sweep): workers recycle a small name pool while the renamer moves the
// directories, so same-name entries cross era boundaries. The exact-listing
// invariant must hold with the LWW resolver on — no committed dirent
// vanishes, no settled name resurrects.
class RenameReuseStorm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RenameReuseStorm, ExactListingsUnderCrossEraReuse) {
  const uint64_t seed = GetParam();
  ClusterConfig cfg = SmallClusterConfig(4);
  cfg.seed = seed;
  FsHarness fs(cfg);

  constexpr int kSlots = 3;
  constexpr int kWorkers = 3;
  constexpr int kOpsPerWorker = 40;
  constexpr int kNamePool = 4;  // per worker — forces cross-era reuse
  constexpr int kRenameRounds = 3;

  std::vector<std::string> current(kSlots);
  for (int i = 0; i < kSlots; ++i) {
    current[i] = "/d" + std::to_string(i);
    ASSERT_TRUE(fs.Mkdir(current[i]).ok());
  }

  struct WorkerLog {
    std::set<std::pair<int, std::string>> live;
  };
  std::vector<WorkerLog> logs(kWorkers);
  std::vector<std::unique_ptr<SwitchFsClient>> clients;
  for (int w = 0; w < kWorkers; ++w) {
    clients.push_back(fs.cluster.MakeClient());
  }
  for (int w = 0; w < kWorkers; ++w) {
    sim::Spawn([](SwitchFsClient* c, const std::vector<std::string>* cur,
                  int id, uint64_t seed, WorkerLog* log) -> sim::Task<void> {
      Rng rng(seed ^ (0x7a11ULL * (id + 1)));
      for (int i = 0; i < kOpsPerWorker; ++i) {
        const int slot = static_cast<int>(rng.NextBelow(kSlots));
        const std::string name = "w" + std::to_string(id) + "_" +
                                 std::to_string(rng.NextBelow(kNamePool));
        if (rng.NextBelow(10) < 6) {
          Status s = co_await c->Create((*cur)[slot] + "/" + name);
          if (s.ok() || s.code() == StatusCode::kAlreadyExists) {
            log->live.insert({slot, name});
          }
        } else {
          Status s = co_await c->Unlink((*cur)[slot] + "/" + name);
          if (s.ok()) {
            log->live.erase({slot, name});
          }
        }
      }
    }(clients[w].get(), &current, w, seed, &logs[w]));
  }
  bool renames_done = false;
  sim::Spawn([](sim::Simulator* sm, SwitchFsClient* c,
                std::vector<std::string>* cur, uint64_t seed,
                bool* done) -> sim::Task<void> {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    for (int round = 0; round < kRenameRounds; ++round) {
      for (int i = 0; i < kSlots; ++i) {
        co_await sim::Delay(sm, sim::Microseconds(20 + rng.NextBelow(60)));
        const std::string to =
            "/m" + std::to_string(i) + "_" + std::to_string(round);
        Status s = co_await c->Rename((*cur)[i], to);
        if (!s.ok()) {
          ADD_FAILURE() << (*cur)[i] << " -> " << to << ": " << s.ToString();
          co_return;
        }
        (*cur)[i] = to;
      }
    }
    *done = true;
  }(&fs.cluster.sim(), fs.client.get(), &current, seed, &renames_done));
  fs.cluster.sim().Run();
  ASSERT_TRUE(renames_done);

  // Merge per-worker expectations (names are worker-unique, so no overlap).
  std::vector<std::set<std::string>> expected(kSlots);
  for (const WorkerLog& log : logs) {
    for (const auto& [slot, name] : log.live) {
      expected[slot].insert(name);
    }
  }

  EXPECT_EQ(fs.cluster.TotalPendingChangeLogEntries(), 0u);
  for (int i = 0; i < kSlots; ++i) {
    auto sd = fs.StatDir(current[i]);
    ASSERT_TRUE(sd.ok()) << current[i];
    auto listing = fs.Readdir(current[i]);
    ASSERT_TRUE(listing.ok()) << current[i];
    std::set<std::string> got;
    for (const DirEntry& e : *listing) {
      got.insert(e.name);
    }
    EXPECT_EQ(sd->size, got.size()) << current[i];
    EXPECT_EQ(got, expected[i]) << current[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RenameReuseStorm, ::testing::Values(17, 18),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace switchfs::core
