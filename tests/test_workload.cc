// Workload-layer tests: generator semantics, runner measurement windows,
// trace structure, and a cross-system smoke run proving every FsWorld can be
// driven by the same harness.
#include <gtest/gtest.h>

#include <set>

#include "src/baselines/baseline.h"
#include "src/core/cluster.h"
#include "src/workload/data_service.h"
#include "src/workload/generator.h"
#include "src/workload/runner.h"
#include "src/common/strings.h"
#include "src/workload/traces.h"
#include "tests/switchfs_test_util.h"

namespace switchfs::wl {
namespace {

TEST(Generators, ShuffledOnceVisitsEachPathExactlyOnce) {
  std::vector<std::string> paths;
  for (int i = 0; i < 100; ++i) {
    paths.push_back("/d/f" + std::to_string(i));
  }
  ShuffledOnceStream stream(core::OpType::kUnlink, paths, 3);
  Rng rng(1);
  std::set<std::string> seen;
  while (auto op = stream.Next(rng)) {
    EXPECT_TRUE(seen.insert(op->path).second) << op->path;
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Generators, FreshNamesNeverRepeat) {
  FreshNameStream stream(core::OpType::kCreate, {"/a", "/b"}, "x");
  Rng rng(1);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    auto op = stream.Next(rng);
    ASSERT_TRUE(op.has_value());
    EXPECT_TRUE(seen.insert(op->path).second);
    EXPECT_TRUE(op->path.rfind("/a/x", 0) == 0 || op->path.rfind("/b/x", 0) == 0);
  }
}

TEST(Generators, BurstStreamGroupsCreatesPerDirectory) {
  BurstCreateStream stream({"/d0", "/d1", "/d2"}, 5);
  Rng rng(1);
  for (int burst = 0; burst < 6; ++burst) {
    std::set<std::string> dirs;
    for (int i = 0; i < 5; ++i) {
      auto op = stream.Next(rng);
      ASSERT_TRUE(op.has_value());
      dirs.insert(std::string(switchfs::ParentPath(op->path)));
    }
    EXPECT_EQ(dirs.size(), 1u) << "burst " << burst;
  }
}

TEST(Generators, MixStreamRespectsRatiosApproximately) {
  std::vector<std::string> dirs;
  for (int i = 0; i < 50; ++i) {
    dirs.push_back("/dir" + std::to_string(i));
  }
  MixStream stream(PanguMix(), dirs, 100, /*skew=*/0.0, 0, 5);
  Rng rng(2);
  int creates = 0;
  int opens = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    auto op = stream.Next(rng);
    ASSERT_TRUE(op.has_value());
    if (op->type == core::OpType::kCreate) {
      creates++;
    }
    if (op->type == core::OpType::kOpen) {
      opens++;
    }
  }
  EXPECT_NEAR(creates / double(kN), 0.0958, 0.01);
  EXPECT_NEAR(opens / double(kN), 0.526, 0.02);
}

TEST(Generators, MixStreamSkewConcentratesOnHotDirs) {
  std::vector<std::string> dirs;
  for (int i = 0; i < 100; ++i) {
    dirs.push_back("/dir" + std::to_string(i));
  }
  MixStream stream(PanguMix(), dirs, 10, /*skew=*/0.8, 0, 5);
  Rng rng(2);
  int hot = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    auto op = stream.Next(rng);
    ASSERT_TRUE(op.has_value());
    // Hot set = first 20 dirs (/dir0../dir19, matching dirs_[0..19]).
    std::string dir(switchfs::ParentPath(op->path));
    if (dir == "/") {
      dir = op->path;  // statdir/readdir target the dir itself
    }
    int index = std::stoi(dir.substr(4));
    if (index < 20) {
      hot++;
    }
  }
  EXPECT_GT(hot / double(kN), 0.7);
}

TEST(Generators, StatBurstStreamEmitsFixedSizeBatches) {
  std::vector<std::string> paths;
  for (int i = 0; i < 40; ++i) {
    paths.push_back("/d/f" + std::to_string(i));
  }
  StatBurstStream stream(paths, 8);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    auto op = stream.Next(rng);
    ASSERT_TRUE(op.has_value());
    EXPECT_EQ(op->type, core::OpType::kBatchStat);
    EXPECT_EQ(op->batch.size(), 8u);
    for (const std::string& p : op->batch) {
      EXPECT_EQ(p.rfind("/d/f", 0), 0u);
    }
  }
}

TEST(Generators, MixStreamEmitsV2OpKinds) {
  MixRatios ratios;
  ratios.paged_readdir = 30;
  ratios.stat_burst = 40;
  ratios.setattr = 30;
  std::vector<std::string> dirs = {"/a", "/b"};
  MixStream stream(ratios, dirs, /*preloaded_per_dir=*/10, 0.0, 0, 9);
  stream.stat_burst_size = 5;
  Rng rng(3);
  int scans = 0;
  int bursts = 0;
  int setattrs = 0;
  for (int i = 0; i < 300; ++i) {
    auto op = stream.Next(rng);
    ASSERT_TRUE(op.has_value());
    switch (op->type) {
      case core::OpType::kReaddirPage:
        scans++;
        break;
      case core::OpType::kBatchStat:
        bursts++;
        EXPECT_EQ(op->batch.size(), 5u);
        break;
      case core::OpType::kSetAttr:
        setattrs++;
        break;
      default:
        ADD_FAILURE() << "unexpected op kind";
    }
  }
  EXPECT_GT(scans, 50);
  EXPECT_GT(bursts, 70);
  EXPECT_GT(setattrs, 50);
}

TEST(Generators, MixStreamEmitsBulkCreateBatches) {
  MixRatios ratios;
  ratios.bulk_create = 100;
  std::vector<std::string> dirs = {"/a", "/b"};
  MixStream stream(ratios, dirs, /*preloaded_per_dir=*/0, 0.0, 0, 9);
  stream.bulk_create_size = 12;
  Rng rng(3);
  std::set<std::string> seen;
  for (int i = 0; i < 50; ++i) {
    auto op = stream.Next(rng);
    ASSERT_TRUE(op.has_value());
    ASSERT_EQ(op->type, core::OpType::kBulkInsert);
    EXPECT_TRUE(op->path == "/a" || op->path == "/b");
    EXPECT_EQ(op->batch.size(), 12u);
    for (const std::string& name : op->batch) {
      // Bare names (the runner opens op.path), fresh across the stream.
      EXPECT_EQ(name.find('/'), std::string::npos);
      EXPECT_TRUE(seen.insert(op->path + "/" + name).second) << name;
    }
  }
}

TEST(Traces, CvTrainingHasThreePhases) {
  TraceConfig cfg;
  cfg.num_dirs = 2;
  cfg.files_per_dir = 10;
  cfg.epochs = 2;
  cfg.with_data = false;
  CvTrainingTrace trace({"/d0", "/d1"}, cfg);
  // 20 creates + 2 epochs * 20 * (stat+open+close) + 20 deletes.
  EXPECT_EQ(trace.total_ops(), 20u + 2u * 20u * 3u + 20u);
  Rng rng(1);
  int creates = 0;
  int unlinks = 0;
  while (auto op = trace.Next(rng)) {
    creates += op->type == core::OpType::kCreate;
    unlinks += op->type == core::OpType::kUnlink;
  }
  EXPECT_EQ(creates, 20);
  EXPECT_EQ(unlinks, 20);
}

TEST(Runner, MeasuresThroughputAndLatencyOnSwitchFs) {
  core::ClusterConfig cfg = core::SmallClusterConfig();
  core::Cluster cluster(cfg);
  auto dirs = PreloadDirs(cluster, 8);
  auto files = PreloadFiles(cluster, dirs, 50);

  RandomChoiceStream stream(core::OpType::kStat, files);
  RunnerConfig rc;
  rc.workers = 16;
  rc.total_ops = 4000;
  rc.warmup_ops = 500;
  RunResult result = RunWorkload(cluster, stream, rc);
  EXPECT_EQ(result.completed, 3500u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.ThroughputOpsPerSec(), 1e4);
  EXPECT_GT(result.MeanLatencyUs(), 1.0);
  EXPECT_LT(result.MeanLatencyUs(), 500.0);
  EXPECT_GE(result.PercentileUs(0.99), result.PercentileUs(0.5));
}

TEST(Runner, DrivesEverySystemUniformly) {
  // The same harness must run unmodified on all five systems.
  std::vector<std::unique_ptr<core::FsWorld>> worlds;
  {
    core::ClusterConfig cfg = core::SmallClusterConfig();
    worlds.push_back(std::make_unique<core::Cluster>(cfg));
  }
  for (auto kind :
       {baselines::SystemKind::kEInfiniFS, baselines::SystemKind::kECfs,
        baselines::SystemKind::kIndexFS}) {
    baselines::BaselineConfig cfg;
    cfg.kind = kind;
    cfg.num_servers = 4;
    worlds.push_back(std::make_unique<baselines::BaselineCluster>(cfg));
  }
  for (auto& world : worlds) {
    auto dirs = PreloadDirs(*world, 4);
    FreshNameStream stream(core::OpType::kCreate, dirs, "w");
    RunnerConfig rc;
    rc.workers = 8;
    rc.total_ops = 600;
    rc.warmup_ops = 100;
    RunResult result = RunWorkload(*world, stream, rc);
    EXPECT_EQ(result.completed, 500u) << world->name();
    EXPECT_EQ(result.failed, 0u) << world->name();
    EXPECT_GT(result.ThroughputOpsPerSec(), 1000.0) << world->name();
  }
}

TEST(Runner, ExecutesV2OpKindsOnEverySystem) {
  // Paged scans, stat bursts, and setattrs must run on all five systems
  // through the shared runner (the v2 fan-out of DrivesEverySystemUniformly).
  std::vector<std::unique_ptr<core::FsWorld>> worlds;
  {
    core::ClusterConfig cfg = core::SmallClusterConfig();
    worlds.push_back(std::make_unique<core::Cluster>(cfg));
  }
  for (auto kind :
       {baselines::SystemKind::kEInfiniFS, baselines::SystemKind::kECfs,
        baselines::SystemKind::kIndexFS}) {
    baselines::BaselineConfig cfg;
    cfg.kind = kind;
    cfg.num_servers = 4;
    worlds.push_back(std::make_unique<baselines::BaselineCluster>(cfg));
  }
  MixRatios ratios;
  ratios.paged_readdir = 10;
  ratios.stat_burst = 50;
  ratios.setattr = 40;
  // bulk_create runs as its own pass below: mixing it with stats would let a
  // worker stat a fresh name before the bulk insert that creates it lands
  // (the same inherent race as create+stat mixes), and this test asserts
  // failed == 0.
  MixRatios bulk_ratios;
  bulk_ratios.bulk_create = 100;
  for (auto& world : worlds) {
    auto dirs = PreloadDirs(*world, 4);
    PreloadFiles(*world, dirs, 40);
    MixStream stream(ratios, dirs, 40, 0.0, 0, 11);
    RunnerConfig rc;
    rc.workers = 8;
    rc.total_ops = 400;
    rc.warmup_ops = 50;
    RunResult result = RunWorkload(*world, stream, rc);
    EXPECT_EQ(result.completed, 350u) << world->name();
    EXPECT_EQ(result.failed, 0u) << world->name();

    MixStream bulk_stream(bulk_ratios, dirs, 0, 0.0, 0, 13);
    bulk_stream.bulk_create_size = 12;
    RunnerConfig brc;
    brc.workers = 8;
    brc.total_ops = 40;
    brc.warmup_ops = 0;
    RunResult bulk = RunWorkload(*world, bulk_stream, brc);
    EXPECT_EQ(bulk.completed, 40u) << world->name();
    EXPECT_EQ(bulk.failed, 0u) << world->name();
  }
}

TEST(Runner, EndToEndWithDataServiceTransfersBytes) {
  core::ClusterConfig cfg = core::SmallClusterConfig();
  core::Cluster cluster(cfg);
  auto dirs = PreloadDirs(cluster, 4);
  DataService data(&cluster.sim(), &cluster.costs(), 4);

  TraceConfig tc;
  tc.num_dirs = 4;
  tc.files_per_dir = 20;
  tc.epochs = 1;
  CvTrainingTrace trace(dirs, tc);
  RunnerConfig rc;
  rc.workers = 8;
  rc.total_ops = 0;  // run the bounded trace dry
  rc.warmup_ops = 0;
  rc.data = &data;
  RunResult result = RunWorkload(cluster, trace, rc);
  EXPECT_EQ(result.completed, trace.total_ops());
  EXPECT_GT(data.transfers(), 0u);
  EXPECT_GT(data.bytes_moved(), 80u * 128 * 1024);
}

}  // namespace
}  // namespace switchfs::wl
