// R2 append-innermost fixtures.
#include "fixture_defs.h"

sim::Task<void> AppendPositiveInverted(FakeVol& v) {
  auto a = co_await v.append_locks.AcquireExclusive(1);
  auto g = co_await v.group_locks.AcquireExclusive(1);  // flagged
  co_return;
}

sim::Task<void> AppendPositiveSecondAppend(FakeVol& v) {
  auto a = co_await v.append_locks.AcquireExclusive(1);
  // Even a same-class pair must carry the ordering argument in a
  // suppression (the dynamic checker allows it; the static rule does not).
  auto b = co_await v.append_locks.AcquireExclusive(2);  // flagged
  co_return;
}

sim::Task<void> AppendSuppressed(FakeVol& v) {
  auto a = co_await v.append_locks.AcquireExclusive(1);
  // sfs-lint: allow(append-innermost, fixture — pair taken in key order)
  auto b = co_await v.append_locks.AcquireExclusive(2);
  co_return;
}

sim::Task<void> AppendNegativeInnermostLast(FakeVol& v) {
  auto g = co_await v.group_locks.AcquireExclusive(1);
  auto a = co_await v.append_locks.AcquireExclusive(1);  // innermost last: ok
  co_return;
}

sim::Task<void> AppendNegativeScopeEnded(FakeVol& v) {
  {
    auto a = co_await v.append_locks.AcquireExclusive(1);
  }
  auto g = co_await v.group_locks.AcquireExclusive(1);  // append released: ok
  co_return;
}
