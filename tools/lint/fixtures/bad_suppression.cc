// Suppression-syntax fixtures: a reason is mandatory and the rule must be
// one sfs-lint knows about.
#include "fixture_defs.h"

sim::Task<void> BadSuppressionEmptyReason(FakeVol& v) {
  // sfs-lint: allow(borrow-across-suspend, )
  int& slot = v.table[1];
  co_await sim::Delay(10);
  slot = 2;
}

sim::Task<void> BadSuppressionUnknownRule(FakeVol& v) {
  // sfs-lint: allow(made-up-rule, reason text)
  co_await sim::Delay(10);
  Use(1);
}
