// R1 borrow-across-suspend fixtures: positive, suppressed, and negative
// variants. Golden line numbers live in tools/lint/expected.txt — keep edits
// append-only or regenerate the golden.
#include "fixture_defs.h"

sim::Task<void> BorrowPositiveReference(FakeVol& v) {
  int& slot = v.table[1];
  co_await sim::Delay(10);
  slot = 2;  // use after the suspension: flagged at the declaration
}

sim::Task<void> BorrowPositiveIterator(FakeVol& v) {
  auto it = v.table.find(1);
  co_await sim::Delay(10);
  Use(it->second);
}

sim::Task<void> BorrowPositiveRangeFor(FakeVol& v) {
  for (auto& kv : v.table) {
    co_await sim::Delay(10);
    Use(kv.second);
  }
}

sim::Task<void> BorrowSuppressed(FakeVol& v) {
  // sfs-lint: allow(borrow-across-suspend, fixture — pretend the slot is pinned)
  int& slot = v.table[1];
  co_await sim::Delay(10);
  slot = 2;
}

sim::Task<void> BorrowNegativeCopy(FakeVol& v) {
  int val = v.table[1];  // a copy, not a borrow
  co_await sim::Delay(10);
  Use(val);
}

sim::Task<void> BorrowNegativeRefind(FakeVol& v) {
  int* p = &v.table[1];
  co_await sim::Delay(10);
  p = &v.table[1];  // re-found after the suspension: liveness resets
  Use(*p);
}

sim::Task<void> BorrowNegativeShielded(FakeVol& v) {
  while (true) {
    int* p = &v.table[1];
    if (*p == 0) {
      co_await sim::Delay(10);
      co_return;  // terminator: the await cannot flow to the use below
    }
    Use(*p);
  }
}

sim::Task<void> BorrowNegativeLocalContainer(std::map<int, int> own) {
  int& slot = own[1];  // not suspension-shared state
  co_await sim::Delay(10);
  slot = 2;
}
