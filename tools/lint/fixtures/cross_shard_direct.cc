// R5 cross-shard-direct fixtures.
#include "fixture_defs.h"

int ShardDirectPositive(FakeSharded& s) {
  return s.shard_vec[0];  // flagged: direct index outside a router
}

void ShardDirectPointerPositive(FakeSharded* s) {
  Use(s->shard_vec[1]);  // flagged: -> access outside a router
}

int ShardDirectSuppressed(FakeSharded& s) {
  // sfs-lint: allow(cross-shard-direct, fixture — op handed off to the owning shard's lane)
  return s.shard_vec[2];
}

SFS_SHARD_ROUTER int RouterNegative(FakeSharded& s) {
  return s.shard_vec.size();  // router accessor: ok
}
