// R3 discarded-status fixtures.
#include "fixture_defs.h"

sim::Task<void> DiscardPositive(FakeVol& v) {
  co_await AsyncStatusThing();  // flagged: result dropped on the floor
  Use(1);
}

sim::Task<void> DiscardSuppressed(FakeVol& v) {
  // sfs-lint: allow(discarded-status, fixture — failure is benign here)
  co_await AsyncStatusThing();
  Use(1);
}

sim::Task<void> DiscardNegativeChecked(FakeVol& v) {
  Status s = co_await AsyncStatusThing();
  if (!s.ok()) {
    co_return;
  }
}

sim::Task<void> DiscardNegativeVoidCast(FakeVol& v) {
  (void)co_await AsyncStatusThing();  // explicit, visible discard: allowed
}

sim::Task<Status> DiscardNegativeForwarded(FakeVol& v) {
  co_return co_await AsyncStatusThing();
}

sim::Task<void> DiscardNegativeNonStatus(FakeVol& v) {
  co_await sim::Delay(10);  // callee does not return Status
  co_await AsyncIntThing();  // nor does this one
}
