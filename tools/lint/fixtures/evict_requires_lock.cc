// R4 evict-requires-lock fixtures.
#include "fixture_defs.h"

sim::Task<void> EvictPositiveNoGuard(FakeVol& v) {
  co_await FakeEvict(v, 7);  // flagged: no exclusive inode guard live
}

sim::Task<void> EvictPositiveReleased(FakeVol& v) {
  auto lock = co_await v.inode_locks.AcquireExclusive(7);
  lock.Release();
  co_await FakeEvict(v, 7);  // flagged: guard released before the call
}

sim::Task<void> EvictSuppressed(FakeVol& v) {
  // sfs-lint: allow(evict-requires-lock, fixture — lock held out of band)
  co_await FakeEvict(v, 7);
}

sim::Task<void> EvictNegativeGuarded(FakeVol& v) {
  auto lock = co_await v.inode_locks.AcquireExclusive(7);
  co_await FakeEvict(v, 7);  // guard live in the enclosing scope: ok
}

sim::Task<void> EvictNegativeLateBind(FakeVol& v, bool write) {
  Handle lock;
  if (write) {
    lock = co_await v.inode_locks.AcquireExclusive(7);
  }
  co_await FakeEvict(v, 7);  // guard scoped to the declaration: ok
}
