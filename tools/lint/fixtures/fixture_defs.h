// Minimal stand-ins for the sfs-lint fixtures: just enough lexical surface
// for scripts/lint/sfs_lint.py to harvest annotated types, lock members, and
// Status-returning signatures. The fixtures are linted, never compiled — the
// golden test (tools/lint/test_lint.py) pins the analyzer's output on them.
#pragma once

#define SFS_SUSPENSION_SHARED
#define SFS_LOCKABLE
#define SFS_LOCK_INNERMOST
#define SFS_REQUIRES_EXCLUSIVE(lock)
#define SFS_SHARD_PRIVATE
#define SFS_SHARD_ROUTER

#include <map>

struct Status {
  bool ok() const;
  int code() const;
};

template <typename T>
struct StatusOr {
  bool ok() const;
  T& operator*();
};

namespace sim {

template <typename T>
struct Task {};

Task<void> Delay(int ns);

}  // namespace sim

struct Handle {
  void Release();
};

class SFS_LOCKABLE LockTable {
 public:
  sim::Task<Handle> AcquireShared(int key);
  sim::Task<Handle> AcquireExclusive(int key);
};

struct SFS_SUSPENSION_SHARED FakeVol {
  std::map<int, int> table;
  LockTable inode_locks;
  LockTable group_locks;
  SFS_LOCK_INNERMOST LockTable append_locks;
};

void Use(int x);

Status SyncStatusThing();
sim::Task<Status> AsyncStatusThing();
sim::Task<int> AsyncIntThing();

SFS_REQUIRES_EXCLUSIVE(inode_locks)
sim::Task<void> FakeEvict(FakeVol& v, int fp);

// Shard-partitioned stand-in for R5: the vector is shard-private; only the
// annotated router accessor may index it.
struct FakeSharded {
  SFS_SHARD_PRIVATE std::map<int, int> shard_vec;
  SFS_SHARD_ROUTER int RouterAt(int i) { return shard_vec[i]; }
};
