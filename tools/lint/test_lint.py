#!/usr/bin/env python3
"""Golden-output test for scripts/lint/sfs_lint.py.

Runs the analyzer over tools/lint/fixtures/ and compares the findings
line-for-line against tools/lint/expected.txt. The fixtures encode, per rule,
a positive variant (must be flagged), a suppressed variant (must be silent
and counted as suppressed), and negative variants (must be silent). A
behavioral change to the analyzer that shifts any of these shows up as a
golden diff here. Registered with ctest as `lint_fixtures`.
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, os.pardir, os.pardir, "scripts", "lint",
                    "sfs_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
GOLDEN = os.path.join(HERE, "expected.txt")

# One suppressed variant per rule, consumed from the fixtures.
EXPECTED_SUPPRESSED = 5


def main():
    proc = subprocess.run(
        [sys.executable, LINT, FIXTURES, "--relative-to", FIXTURES],
        capture_output=True, text=True)
    with open(GOLDEN, "r", encoding="utf-8") as fh:
        expected = fh.read()

    failures = []
    if proc.stdout != expected:
        import difflib
        diff = "".join(difflib.unified_diff(
            expected.splitlines(keepends=True),
            proc.stdout.splitlines(keepends=True),
            fromfile="expected.txt", tofile="sfs-lint output"))
        failures.append("finding mismatch:\n" + diff)
    if proc.returncode != 1:
        failures.append("exit code: expected 1 (unsuppressed findings "
                        "present), got %d" % proc.returncode)
    m = re.search(r"(\d+) finding\(s\), (\d+) suppressed", proc.stderr)
    if not m:
        failures.append("summary line missing from stderr: %r" % proc.stderr)
    elif int(m.group(2)) != EXPECTED_SUPPRESSED:
        failures.append("suppressed count: expected %d, got %s" %
                        (EXPECTED_SUPPRESSED, m.group(2)))

    if failures:
        print("FAIL: sfs-lint fixture check")
        for f in failures:
            print(f)
        return 1
    print("PASS: sfs-lint fixtures match golden "
          "(%d findings, %d suppressed)" %
          (len(expected.splitlines()), EXPECTED_SUPPRESSED))
    return 0


if __name__ == "__main__":
    sys.exit(main())
